package workloads

import (
	"fmt"
	"strings"

	"xtenergy/internal/core"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/tie"
)

// The Reed-Solomon experiment (paper Fig. 4): one application — the
// RS(255,247)-style systematic encoder plus the decoder side (syndrome
// computation over a codeword with one corrupted byte, followed by
// single-error location and correction) — implemented with four
// different custom-instruction choices, whose energies the macro-model
// must rank consistently with the reference estimator:
//
//	C1 rs_base   — base ISA only; GF multiplies via in-memory log/exp tables
//	C2 rs_gfmul  — single-cycle hardware GF multiplier
//	C3 rs_gfmac  — GF multiply-accumulate with the feedback byte latched
//	               in a TIE register
//	C4 rs_gffold — the whole LFSR parity state lives in TIE registers;
//	               one 3-cycle instruction folds a data byte into all
//	               eight taps
const (
	rsMsgLen  = 240
	rsPasses  = 8
	rsDeg     = 8
	rsOutAddr = 0x6000
	// Decoder side: the codeword (message || parity, highest degree
	// first) is assembled at rsCwAddr with one corrupted byte, and the
	// eight syndromes are written to rsSynAddr.
	rsCwAddr      = 0x7000
	rsCwLen       = rsMsgLen + rsDeg
	rsSynAddr     = rsOutAddr + rsDeg
	rsCorruptPos  = 17
	rsCorruptMask = 0x55
)

func rsMessage() []uint32 {
	v := randWords(rsMsgLen, 123)
	for i := range v {
		v[i] &= 0xFF
	}
	return v
}

// rsEncodeRef mirrors the encoder in Go: it returns the 8 parity bytes
// after one pass over the message.
func rsEncodeRef(msg []uint32, gen []uint32) []uint32 {
	par := make([]uint32, rsDeg)
	for _, d := range msg {
		fb := (d ^ par[rsDeg-1]) & 0xFF
		for j := rsDeg - 1; j > 0; j-- {
			par[j] = par[j-1] ^ gfMulByte(fb, gen[j])
		}
		par[0] = gfMulByte(fb, gen[0])
	}
	return par
}

// rsCodewordRef returns the (corrupted) codeword the decoder kernels
// operate on: message bytes followed by the parity in descending degree
// order, with one byte flipped.
func rsCodewordRef(msg, par []uint32) []uint32 {
	cw := make([]uint32, 0, len(msg)+len(par))
	cw = append(cw, msg...)
	for j := len(par) - 1; j >= 0; j-- {
		cw = append(cw, par[j])
	}
	cw[rsCorruptPos] ^= rsCorruptMask
	return cw
}

// rsSyndromesRef computes the eight syndromes S_i = r(alpha^i) of a
// codeword by Horner evaluation (alpha = 2).
func rsSyndromesRef(cw []uint32) []uint32 {
	out := make([]uint32, rsDeg)
	for i := 0; i < rsDeg; i++ {
		alpha := uint32(1) << uint(i) // 2^i, i < 8: no reduction needed
		var s uint32
		for _, c := range cw {
			s = gfMulByte(s, alpha) ^ (c & 0xFF)
		}
		out[i] = s
	}
	return out
}

// buildCodewordAsm emits assembly assembling the corrupted codeword at
// rsCwAddr from the message and the just-stored parity (descending
// degree order), matching rsCodewordRef.
func buildCodewordAsm() string {
	return fmt.Sprintf(`    movi a2, msg
    movi a3, %d
    movi a4, %d
bld_cp:
    l8ui a5, a2, 0
    s8i a5, a3, 0
    addi a2, a2, 1
    addi a3, a3, 1
    addi a4, a4, -1
    bnez a4, bld_cp
    movi a2, %d         ; parity, reversed into descending degree
    movi a4, %d
bld_par:
    addi a4, a4, -1
    add a5, a2, a4
    l8ui a5, a5, 0
    s8i a5, a3, 0
    addi a3, a3, 1
    bnez a4, bld_par
    movi a3, %d
    l8ui a5, a3, %d     ; corrupt one byte
    xori a5, a5, %d
    s8i a5, a3, %d
`, rsCwAddr, rsMsgLen, rsOutAddr, rsDeg, rsCwAddr, rsCorruptPos, rsCorruptMask, rsCorruptPos)
}

// GFFoldExtension is choice C4: the parity LFSR lives entirely in custom
// state. gfclr zeroes it, setcoef loads the generator, gffold folds one
// data byte through all eight taps in three cycles, and gfrdp reads the
// packed parity back.
func GFFoldExtension() *tie.Extension {
	// Custom state: regs[0..7] = generator coefficients,
	// regs[8..15] = parity bytes, regs[16..23] = decoder syndromes.
	return &tie.Extension{
		Name:          "gffold",
		NumCustomRegs: 24,
		Instructions: []*tie.Instruction{
			{
				Name: "setcoef", Latency: 1, ReadsGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "gl_coefs", Cat: hwlib.CustomRegister, Width: 64}, true),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					s.Regs[int(op.RtVal)%rsDeg] = op.RsVal & 0xFF
					return 0
				},
			},
			{
				Name: "gfclr", Latency: 1,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "gl_par", Cat: hwlib.CustomRegister, Width: 64}, false),
				},
				Semantics: func(s *tie.State, _ tie.Operands) uint32 {
					for i := rsDeg; i < 2*rsDeg; i++ {
						s.Regs[i] = 0
					}
					return 0
				},
			},
			{
				Name: "gffold", Latency: 3, ReadsGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "gl_tab", Cat: hwlib.Table, Width: 8, Entries: 512}, true),
					dp(hwlib.Component{Name: "gl_mul", Cat: hwlib.TIEMult, Width: 16}, false),
					dp(hwlib.Component{Name: "gl_csa", Cat: hwlib.TIECsa, Width: 64}, false),
					dp(hwlib.Component{Name: "gl_xor", Cat: hwlib.LogicRedMux, Width: 64}, false),
					dp(hwlib.Component{Name: "gl_par", Cat: hwlib.CustomRegister, Width: 64}, false),
					dp(hwlib.Component{Name: "gl_coefs", Cat: hwlib.CustomRegister, Width: 64}, false),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					fb := (op.RsVal ^ s.Regs[2*rsDeg-1]) & 0xFF
					for j := rsDeg - 1; j > 0; j-- {
						s.Regs[rsDeg+j] = s.Regs[rsDeg+j-1] ^ gfMulByte(fb, s.Regs[j])
					}
					s.Regs[rsDeg] = gfMulByte(fb, s.Regs[0])
					return 0
				},
			},
			{
				Name: "gfrdp", Latency: 1, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "gl_par", Cat: hwlib.CustomRegister, Width: 64}, false),
					dp(hwlib.Component{Name: "gl_rdmux", Cat: hwlib.LogicRedMux, Width: 32}, false),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					base := rsDeg + 4*(int(op.Rt)&1)
					return s.Regs[base] | s.Regs[base+1]<<8 |
						s.Regs[base+2]<<16 | s.Regs[base+3]<<24
				},
			},
			// Decoder side: all eight syndromes update in parallel per
			// received byte (S_i = S_i*alpha^i ^ c).
			{
				Name: "gfsynclr", Latency: 1,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "gl_syn", Cat: hwlib.CustomRegister, Width: 64}, false),
				},
				Semantics: func(s *tie.State, _ tie.Operands) uint32 {
					for i := 2 * rsDeg; i < 3*rsDeg; i++ {
						s.Regs[i] = 0
					}
					return 0
				},
			},
			{
				Name: "gfsyn", Latency: 3, ReadsGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "gl_tab", Cat: hwlib.Table, Width: 8, Entries: 512}, true),
					dp(hwlib.Component{Name: "gl_mul", Cat: hwlib.TIEMult, Width: 16}, false),
					dp(hwlib.Component{Name: "gl_csa", Cat: hwlib.TIECsa, Width: 64}, false),
					dp(hwlib.Component{Name: "gl_syn", Cat: hwlib.CustomRegister, Width: 64}, false),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					c := op.RsVal & 0xFF
					for i := 0; i < rsDeg; i++ {
						alpha := uint32(1) << uint(i)
						s.Regs[2*rsDeg+i] = gfMulByte(s.Regs[2*rsDeg+i], alpha) ^ c
					}
					return 0
				},
			},
			{
				Name: "gfsynrd", Latency: 1, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "gl_syn", Cat: hwlib.CustomRegister, Width: 64}, false),
					dp(hwlib.Component{Name: "gl_rdmux", Cat: hwlib.LogicRedMux, Width: 32}, false),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					base := 2*rsDeg + 4*(int(op.Rt)&1)
					return s.Regs[base] | s.Regs[base+1]<<8 |
						s.Regs[base+2]<<16 | s.Regs[base+3]<<24
				},
			},
		},
	}
}

// Per-config syndrome kernels (Horner over the codeword). Each stores
// the eight syndrome bytes at rsSynAddr.

func synKernelBase() string {
	return fmt.Sprintf(`    movi a16, 0
syn_i:
    movi a5, 0
    movi a2, %d
    movi a3, %d
syn_b:
    l8ui a6, a2, 0
    beqz a5, syn_z
    movi a7, logtab
    add a7, a7, a5
    l8ui a7, a7, 0      ; log S
    add a7, a7, a16     ; + log alpha_i (= i)
    movi a8, exptab
    add a8, a8, a7
    l8ui a5, a8, 0      ; S * alpha_i
syn_z:
    xor a5, a5, a6
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, syn_b
    movi a7, %d
    add a7, a7, a16
    s8i a5, a7, 0
    addi a16, a16, 1
    blti a16, 8, syn_i
`, rsCwAddr, rsCwLen, rsSynAddr)
}

func synKernelGFMul() string {
	return fmt.Sprintf(`    movi a16, 0
syn_i:
    movi a5, 0
    movi a7, 1
    sll a7, a7, a16     ; alpha_i = 2^i
    movi a2, %d
    movi a3, %d
syn_b:
    l8ui a6, a2, 0
    gfmul a5, a5, a7
    xor a5, a5, a6
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, syn_b
    movi a8, %d
    add a8, a8, a16
    s8i a5, a8, 0
    addi a16, a16, 1
    blti a16, 8, syn_i
`, rsCwAddr, rsCwLen, rsSynAddr)
}

func synKernelGFMac() string {
	return fmt.Sprintf(`    movi a16, 0
syn_i:
    movi a5, 0
    movi a7, 1
    sll a7, a7, a16
    movi a2, %d
    movi a3, %d
syn_b:
    l8ui a6, a2, 0
    setfb a5, a5, a5    ; fb = S
    gfmac a5, a6, a7    ; S = c ^ S*alpha_i
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, syn_b
    movi a8, %d
    add a8, a8, a16
    s8i a5, a8, 0
    addi a16, a16, 1
    blti a16, 8, syn_i
`, rsCwAddr, rsCwLen, rsSynAddr)
}

// correctionAsm emits the single-error corrector shared by all four
// configurations: with one corrupted byte, S0 is the error magnitude and
// S1 = S0 * alpha^d locates it (d = the coefficient degree). The search
// multiplies by alpha with the 3-instruction base-ALU "xtime" step, so
// no extra custom hardware is needed. The corrected byte is patched in
// place at rsCwAddr.
func correctionAsm() string {
	return fmt.Sprintf(`    movi a2, %d
    l8ui a4, a2, 0      ; S0 = error magnitude
    l8ui a5, a2, 1      ; S1 = S0 * alpha^d
    beqz a4, c_done     ; zero syndromes: nothing to fix
    mov a6, a4          ; t = S0 * alpha^0
    movi a7, 0          ; d
    movi a9, %d
c_find:
    beq a6, a5, c_found
    slli a6, a6, 1      ; t *= alpha (xtime)
    bbci a6, 8, c_sk
    xori a6, a6, 0x11D
c_sk:
    addi a7, a7, 1
    blt a7, a9, c_find
    j c_done            ; unlocatable (not a single error)
c_found:
    movi a8, %d         ; idx = CWLEN-1-d
    sub a8, a8, a7
    movi a10, %d
    add a10, a10, a8
    l8ui a11, a10, 0
    xor a11, a11, a4    ; cancel the error magnitude
    s8i a11, a10, 0
c_done:
`, rsSynAddr, rsCwLen, rsCwLen-1, rsCwAddr)
}

func synKernelGFFold() string {
	return fmt.Sprintf(`    gfsynclr a0, a0, a0
    movi a2, %d
    movi a3, %d
syn_b:
    l8ui a10, a2, 0
    gfsyn a0, a10, a10
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, syn_b
    gfsynrd a20, a0, a0
    gfsynrd a21, a0, a1
    movi a12, %d
    s32i a20, a12, 0
    s32i a21, a12, 4
`, rsCwAddr, rsCwLen, rsSynAddr)
}

// storeParityBytes emits stores of parity registers a20..a27 to the
// output area.
func storeParityBytes() string {
	var b strings.Builder
	fmt.Fprintf(&b, "    movi a12, %d\n", rsOutAddr)
	for j := 0; j < rsDeg; j++ {
		fmt.Fprintf(&b, "    s8i a%d, a12, %d\n", 20+j, j)
	}
	return b.String()
}

// clearParityRegs emits code zeroing parity registers a20..a27.
func clearParityRegs() string {
	var b strings.Builder
	for j := 0; j < rsDeg; j++ {
		fmt.Fprintf(&b, "    movi a%d, 0\n", 20+j)
	}
	return b.String()
}

// ReedSolomonBase is configuration C1: GF multiplication via log/antilog
// tables in data memory, taps unrolled with precomputed log(g[j]).
func ReedSolomonBase() core.Workload {
	logT, expT := gfTables()
	gen := rsGenPoly(rsDeg)

	var taps strings.Builder
	for j := rsDeg - 1; j > 0; j-- {
		fmt.Fprintf(&taps, "    l8ui a13, a12, %d\n    xor a%d, a%d, a13\n",
			logT[gen[j]], 20+j, 20+j-1)
	}
	fmt.Fprintf(&taps, "    l8ui a20, a12, %d\n", logT[gen[0]])

	var shift strings.Builder
	for j := rsDeg - 1; j > 0; j-- {
		fmt.Fprintf(&shift, "    mov a%d, a%d\n", 20+j, 20+j-1)
	}
	shift.WriteString("    movi a20, 0\n")

	src := fmt.Sprintf(`start:
    movi a14, %d        ; passes
r_pass:
%s    movi a2, msg
    movi a3, %d
r_byte:
    l8ui a10, a2, 0
    xor a10, a10, a27   ; fb = d ^ par[7]
    beqz a10, r_zero
    movi a11, logtab
    add a11, a11, a10
    l8ui a11, a11, 0    ; log(fb)
    movi a12, exptab
    add a12, a12, a11   ; &exp[log(fb)]
%s    j r_next
r_zero:
%sr_next:
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, r_byte
    addi a14, a14, -1
    bnez a14, r_pass
%s%s%s    ret
.data 0x1000
%s%s%s`,
		rsPasses, clearParityRegs(), rsMsgLen, taps.String(), shift.String(),
		storeParityBytes(), buildCodewordAsm(), synKernelBase()+correctionAsm(),
		byteData("msg", rsMessage()),
		byteData("logtab", logT[:]),
		byteData("exptab", expT[:]))
	return core.Workload{Name: "rs_base", Source: src}
}

// rsCustomKernel builds the shared program shape of C2/C3: coefficients
// in general registers a30..a37, parity in a20..a27, tap updates emitted
// by the callback.
func rsCustomKernel(name string, ext *tie.Extension, perByte func() string, syn string) core.Workload {
	gen := rsGenPoly(rsDeg)
	// Generator coefficients live in a30..a37 (clear of the kernel's
	// scratch registers a10-a14 and parity a20-a27).
	var coefs strings.Builder
	for j := 0; j < rsDeg; j++ {
		fmt.Fprintf(&coefs, "    movi a%d, %d\n", 30+j, gen[j])
	}
	src := fmt.Sprintf(`start:
%s    movi a19, 0
    movi a14, %d
r_pass:
%s    movi a2, msg
    movi a3, %d
r_byte:
    l8ui a10, a2, 0
%s    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, r_byte
    addi a14, a14, -1
    bnez a14, r_pass
%s%s%s    ret
.data 0x1000
%s`, coefs.String(), rsPasses, clearParityRegs(), rsMsgLen, perByte(),
		storeParityBytes(), buildCodewordAsm(), syn+correctionAsm(), byteData("msg", rsMessage()))
	return core.Workload{Name: name, Source: src, Ext: ext}
}

// ReedSolomonGFMul is configuration C2.
func ReedSolomonGFMul() core.Workload {
	return rsCustomKernel("rs_gfmul", GFMulExtension(), func() string {
		var b strings.Builder
		b.WriteString("    xor a10, a10, a27   ; fb\n")
		for j := rsDeg - 1; j > 0; j-- {
			fmt.Fprintf(&b, "    gfmul a13, a10, a%d\n    xor a%d, a%d, a13\n",
				30+j, 20+j, 20+j-1)
		}
		b.WriteString("    gfmul a20, a10, a30\n")
		return b.String()
	}, synKernelGFMul())
}

// ReedSolomonGFMac is configuration C3.
func ReedSolomonGFMac() core.Workload {
	return rsCustomKernel("rs_gfmac", GFMacExtension(), func() string {
		var b strings.Builder
		b.WriteString("    xor a10, a10, a27\n    setfb a10, a10, a10\n")
		for j := rsDeg - 1; j > 0; j-- {
			fmt.Fprintf(&b, "    gfmac a%d, a%d, a%d\n", 20+j, 20+j-1, 30+j)
		}
		b.WriteString("    gfmac a20, a19, a30\n") // a19 = 0
		return b.String()
	}, synKernelGFMac())
}

// ReedSolomonGFFold is configuration C4: one custom instruction folds a
// byte through the whole LFSR.
func ReedSolomonGFFold() core.Workload {
	gen := rsGenPoly(rsDeg)
	var coefs strings.Builder
	for j := 0; j < rsDeg; j++ {
		fmt.Fprintf(&coefs, "    movi a4, %d\n    movi a5, %d\n    setcoef a0, a4, a5\n", gen[j], j)
	}
	src := fmt.Sprintf(`start:
%s    movi a14, %d
r_pass:
    gfclr a0, a0, a0
    movi a2, msg
    movi a3, %d
r_byte:
    l8ui a10, a2, 0
    gffold a0, a10, a10
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, r_byte
    addi a14, a14, -1
    bnez a14, r_pass
    gfrdp a20, a0, a0   ; parity bytes 0..3 (rt field = 0)
    gfrdp a21, a0, a1   ; parity bytes 4..7 (rt field = 1)
    movi a12, %d
    s32i a20, a12, 0
    s32i a21, a12, 4
%s%s    ret
.data 0x1000
%s`, coefs.String(), rsPasses, rsMsgLen, rsOutAddr,
		buildCodewordAsm(), synKernelGFFold()+correctionAsm(), byteData("msg", rsMessage()))
	return core.Workload{Name: "rs_gffold", Source: src, Ext: GFFoldExtension()}
}

// ReedSolomonConfigurations returns the four Fig. 4 custom-instruction
// choices in order C1..C4.
func ReedSolomonConfigurations() []core.Workload {
	return []core.Workload{
		ReedSolomonBase(), ReedSolomonGFMul(), ReedSolomonGFMac(), ReedSolomonGFFold(),
	}
}
