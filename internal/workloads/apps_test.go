package workloads

import (
	"math/bits"
	"sort"
	"testing"

	"xtenergy/internal/core"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
)

// runApp builds and runs a workload, returning the simulator for memory
// inspection.
func runApp(t *testing.T, w core.Workload) (*iss.Result, *iss.Simulator) {
	t.Helper()
	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		t.Fatal(err)
	}
	sim := iss.New(proc)
	res, err := sim.Run(prog, iss.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res, sim
}

func readWords(t *testing.T, sim *iss.Simulator, addr uint32, n int) []uint32 {
	t.Helper()
	out := make([]uint32, n)
	for i := range out {
		w, err := sim.ReadWord(addr + uint32(4*i))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = w
	}
	return out
}

func TestInsSortSortsCorrectly(t *testing.T) {
	_, sim := runApp(t, InsSort())
	got := readWords(t, sim, insSortAddr, insSortN)
	want := insSortData()
	sort.Slice(want, func(i, j int) bool { return int32(want[i]) < int32(want[j]) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arr[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBubsortSortsCorrectly(t *testing.T) {
	_, sim := runApp(t, Bubsort())
	got := readWords(t, sim, bubsortAddr, bubsortN)
	want := bubsortData()
	sort.Slice(want, func(i, j int) bool { return int32(want[i]) < int32(want[j]) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arr[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// gcdOdd mirrors the binary-GCD-with-norm kernel: gcd of the odd parts.
func gcdOdd(u, v uint32) uint32 {
	norm := func(x uint32) uint32 {
		if x == 0 {
			return 0
		}
		return x >> uint(bits.TrailingZeros32(x))
	}
	u, v = norm(u), norm(v)
	for u != v {
		if u > v {
			u = norm(u - v)
		} else {
			v = norm(v - u)
		}
	}
	return u
}

func TestGcdComputesCorrectly(t *testing.T) {
	_, sim := runApp(t, Gcd())
	got, err := sim.ReadWord(gcdOutAddr)
	if err != nil {
		t.Fatal(err)
	}
	data := gcdData()
	var want uint32
	for i := 0; i < gcdPairs; i++ {
		want ^= gcdOdd(data[2*i], data[2*i+1])
	}
	if got != want {
		t.Fatalf("gcd checksum = %#x, want %#x", got, want)
	}
}

func TestAlphablendBlendsCorrectly(t *testing.T) {
	_, sim := runApp(t, Alphablend())
	imga, imgb := blendData()
	got := readWords(t, sim, blendOutAddr, blendN)
	const alpha = 180
	for i := range got {
		var want uint32
		for ch := 0; ch < 4; ch++ {
			sh := uint(8 * ch)
			a := (imga[i] >> sh) & 0xFF
			b := (imgb[i] >> sh) & 0xFF
			c := (a*alpha + b*(255-alpha)) >> 8
			want |= (c & 0xFF) << sh
		}
		if got[i] != want {
			t.Fatalf("out[%d] = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestAdd4AddsCorrectly(t *testing.T) {
	_, sim := runApp(t, Add4())
	va, vb := add4Data()
	got := readWords(t, sim, add4OutAddr, add4N)
	for i := range got {
		var want uint32
		for ch := 0; ch < 4; ch++ {
			sh := uint(8 * ch)
			s := ((va[i] >> sh) & 0xFF) + ((vb[i] >> sh) & 0xFF)
			if s > 255 {
				s = 255
			}
			want |= s << sh
		}
		if got[i] != want {
			t.Fatalf("out[%d] = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestDESRoundsCorrectly(t *testing.T) {
	_, sim := runApp(t, DES())
	blocks, keys := desData()
	sbox := desSBoxTable()
	f := func(r, k, l uint32) uint32 {
		x := r ^ k
		perm := bits.RotateLeft32(x, int(k&31)) ^ (x >> 16)
		var out uint32
		for i := 0; i < 4; i++ {
			g := (perm >> uint(6*i)) & 0x3F
			out ^= sbox[g] >> uint(8*i)
		}
		return out ^ l
	}
	got := readWords(t, sim, 0x1000, desBlocks*2)
	for b := 0; b < desBlocks; b++ {
		l, r := blocks[2*b], blocks[2*b+1]
		for round := 0; round < desRounds; round++ {
			l, r = r, f(r, keys[round], l)
		}
		if got[2*b] != l || got[2*b+1] != r {
			t.Fatalf("block %d = %#x,%#x want %#x,%#x", b, got[2*b], got[2*b+1], l, r)
		}
	}
}

func TestAccumulateSumsCorrectly(t *testing.T) {
	_, sim := runApp(t, Accumulate())
	var want uint64
	for _, v := range accData() {
		want += uint64(v)
	}
	lo, err := sim.ReadWord(accOutAddr)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := sim.ReadWord(accOutAddr + 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := uint64(lo) | uint64(hi)<<32; got != want {
		t.Fatalf("accumulate = %d, want %d", got, want)
	}
}

func TestDrawlineRasterizesCorrectly(t *testing.T) {
	_, sim := runApp(t, Drawline())
	// Mirror Bresenham.
	fb := make([]byte, fbStride*64)
	segs := drawSegments()
	for i := 0; i+3 < len(segs); i += 4 {
		x0, y0 := int32(segs[i]), int32(segs[i+1])
		x1, y1 := int32(segs[i+2]), int32(segs[i+3])
		dx := x1 - x0
		if dx < 0 {
			dx = -dx
		}
		dy := y1 - y0
		if dy < 0 {
			dy = -dy
		}
		dy = -dy
		sx := int32(-1)
		if x0 < x1 {
			sx = 1
		}
		sy := int32(-1)
		if y0 < y1 {
			sy = 1
		}
		err := dx + dy
		for {
			fb[y0*fbStride+x0] = 1
			if x0 == x1 && y0 == y1 {
				break
			}
			e2 := 2 * err
			if e2 >= dy {
				err += dy
				x0 += sx
			}
			if e2 <= dx {
				err += dx
				y0 += sy
			}
		}
	}
	got, err := sim.ReadMem(fbAddr, len(fb))
	if err != nil {
		t.Fatal(err)
	}
	for i := range fb {
		if got[i] != fb[i] {
			t.Fatalf("framebuffer byte %d = %d, want %d", i, got[i], fb[i])
		}
	}
}

func TestMultiAccumulateComputesDotProducts(t *testing.T) {
	_, sim := runApp(t, MultiAccumulate())
	va, vb := macVectors()
	chunk := macN / 4
	for c := 0; c < 4; c++ {
		var want int64
		for i := c * chunk; i < (c+1)*chunk; i++ {
			want += int64(int16(va[i])) * int64(int16(vb[i]))
		}
		got, err := sim.ReadWord(macOutAddr + uint32(4*c))
		if err != nil {
			t.Fatal(err)
		}
		if got != uint32(want) {
			t.Fatalf("chunk %d = %#x, want %#x", c, got, uint32(want))
		}
	}
}

func TestSeqMultComputesProducts(t *testing.T) {
	_, sim := runApp(t, SeqMult())
	va, vb := seqMultData()
	var wantLo, wantHi uint32
	for i := range va {
		p := uint64(va[i]) * uint64(vb[i])
		wantLo ^= uint32(p)
		wantHi ^= uint32(p >> 32)
	}
	lo, _ := sim.ReadWord(seqOutAddr)
	hi, _ := sim.ReadWord(seqOutAddr + 4)
	if lo != wantLo || hi != wantHi {
		t.Fatalf("seq_mult checksum = %#x,%#x want %#x,%#x", lo, hi, wantLo, wantHi)
	}
}

func TestSeqMultUsesMultiCycleCustom(t *testing.T) {
	res, _ := runApp(t, SeqMult())
	// smul latency 4 x 300 + smulh 1 x 300.
	if res.Stats.CustomCycles != 4*seqMultN+seqMultN {
		t.Fatalf("custom cycles = %d, want %d", res.Stats.CustomCycles, 5*seqMultN)
	}
}

func TestApplicationsListMatchesTable2(t *testing.T) {
	apps := Applications()
	wantOrder := []string{
		"ins_sort", "gcd", "alphablend", "add4", "bubsort",
		"des", "accumulate", "drawline", "multi_accumulate", "seq_mult",
	}
	if len(apps) != len(wantOrder) {
		t.Fatalf("got %d applications, want %d", len(apps), len(wantOrder))
	}
	for i, w := range apps {
		if w.Name != wantOrder[i] {
			t.Fatalf("app %d = %s, want %s (Table II order)", i, w.Name, wantOrder[i])
		}
	}
}

func TestApplicationByName(t *testing.T) {
	if _, ok := ApplicationByName("des"); !ok {
		t.Fatal("des not found")
	}
	if _, ok := ApplicationByName("nope"); ok {
		t.Fatal("bogus app found")
	}
}

func TestEveryApplicationUsesCustomInstructions(t *testing.T) {
	for _, w := range Applications() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if w.Ext == nil {
				t.Skip("base-only application")
			}
			res, _ := runApp(t, w)
			if res.Stats.CustomCycles == 0 {
				t.Fatalf("%s declares an extension but executes no custom instructions", w.Name)
			}
		})
	}
}
