package workloads

import (
	"fmt"

	"xtenergy/internal/hwlib"
	"xtenergy/internal/tie"
)

// The characterization suite must cover all custom-hardware library
// components (paper Section IV-A) *and* keep the regression well posed:
// if a category appeared in only one test program, its coefficient would
// be confounded with that program's other variables. The cover
// extensions therefore form a banded design: extension i provides three
// instructions whose datapaths exercise category i heavily, category
// (i+3) mod 10 at medium weight, and category (i+7) mod 10 lightly, so
// every category shows up in three programs at three different ratios to
// the instruction-level variables.

// coverWidth returns a sensible component width for a category at a
// given weight tier (0 = heavy, 1 = medium, 2 = light).
func coverWidth(cat hwlib.Category, tier int) (width, entries int) {
	switch cat {
	case hwlib.Table:
		return 16, []int{512, 128, 32}[tier]
	case hwlib.Multiplier, hwlib.TIEMult, hwlib.TIEMac:
		return []int{32, 16, 8}[tier], 0
	case hwlib.LogicRedMux:
		return []int{128, 48, 16}[tier], 0
	default:
		return []int{64, 32, 12}[tier], 0
	}
}

// makeCoverExt builds cover extension i (i in 0..9). variant rotates the
// width tiers assigned to the three categories, so the same categories
// appear at different complexities across programs — without this, a
// category's unit energy and its width scaling could not be separated.
func makeCoverExt(i, variant int) *tie.Extension {
	cats := []hwlib.Category{
		hwlib.Category(i),
		hwlib.Category((i + 3) % hwlib.NumCategories),
		hwlib.Category((i + 7) % hwlib.NumCategories),
	}
	ext := &tie.Extension{Name: fmt.Sprintf("cov%d_%d", i, variant), NumCustomRegs: 1}
	names := []string{"xa", "xb", "xc"}
	for t, cat := range cats {
		w, entries := coverWidth(cat, (t+variant)%3)
		comp := hwlib.Component{
			Name:    fmt.Sprintf("c%d_%s", i, names[t]),
			Cat:     cat,
			Width:   w,
			Entries: entries,
		}
		// Primary latencies cycle through 1..3 (with one 4-cycle
		// instruction) so the suite spans the multi-cycle behaviour the
		// applications exhibit (the paper: custom instructions "can take
		// multiple clock cycles to complete").
		latency := 1
		if t == 0 {
			latency = 1 + i%3
			if i == 9 {
				latency = 4
			}
		}
		// One light instruction operates purely on TIE state (the
		// paper's custom-register-operand case, CI3 in Fig. 1); all
		// others read and write the general register file, as real TIE
		// instructions overwhelmingly do.
		regfile := !(t == 2 && i == 7)
		tier := t
		ext.Instructions = append(ext.Instructions, &tie.Instruction{
			Name:          names[t],
			Latency:       latency,
			ReadsGeneral:  regfile,
			WritesGeneral: regfile,
			Datapath:      []tie.DatapathElem{dp(comp, regfile)},
			Semantics: func(s *tie.State, op tie.Operands) uint32 {
				if !regfile {
					s.Regs[0] = s.Regs[0]*1664525 + 1013904223
					return 0
				}
				v := op.RsVal*2654435761 + op.RtVal<<uint(tier)
				s.Regs[0] ^= v
				return v
			},
		})
	}
	return ext
}

// mixedCoverExtension returns an extension combining several categories
// in two instructions, for the mixed characterization program.
func mixedCoverExtension() *tie.Extension {
	return &tie.Extension{
		Name:          "cov_mixed",
		NumCustomRegs: 2,
		Instructions: []*tie.Instruction{
			{
				Name: "xmix1", Latency: 2, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "mx_mul", Cat: hwlib.Multiplier, Width: 16}, true),
					dp(hwlib.Component{Name: "mx_add", Cat: hwlib.AddSubCmp, Width: 32}, false),
					dp(hwlib.Component{Name: "mx_shift", Cat: hwlib.Shifter, Width: 24}, false),
					dp(hwlib.Component{Name: "mx_reg", Cat: hwlib.CustomRegister, Width: 32}, false),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					v := (op.RsVal&0xFFFF)*(op.RtVal&0xFFFF) + (op.RsVal >> 7)
					s.Regs[0] += v
					return v
				},
			},
			{
				Name: "xmix2", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "mx_tab", Cat: hwlib.Table, Width: 8, Entries: 128}, true),
					dp(hwlib.Component{Name: "mx_csa", Cat: hwlib.TIECsa, Width: 32}, false),
					dp(hwlib.Component{Name: "mx_logic", Cat: hwlib.LogicRedMux, Width: 48}, false),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					v := op.RsVal ^ (op.RtVal << 3) ^ s.Regs[0]
					s.Regs[1] ^= v
					return v
				},
			},
		},
	}
}
