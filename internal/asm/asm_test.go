package asm

import (
	"strings"
	"testing"

	"xtenergy/internal/hwlib"
	"xtenergy/internal/isa"
	"xtenergy/internal/tie"
)

func baseAsm(t *testing.T) *Assembler {
	t.Helper()
	comp, err := tie.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(comp)
}

func TestAssembleBasic(t *testing.T) {
	prog, err := baseAsm(t).Assemble("p", `
start:
    movi a1, 100
    addi a2, a1, -5
    add  a3, a1, a2
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Code) != 4 {
		t.Fatalf("got %d instructions", len(prog.Code))
	}
	want := []isa.Instr{
		{Op: isa.OpMOVI, Rd: 1, Imm: 100},
		{Op: isa.OpADDI, Rd: 2, Rs: 1, Imm: -5},
		{Op: isa.OpADD, Rd: 3, Rs: 1, Rt: 2},
		{Op: isa.OpRET},
	}
	for i, w := range want {
		if prog.Code[i] != w {
			t.Fatalf("instr %d = %v, want %v", i, prog.Code[i], w)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	prog, err := baseAsm(t).Assemble("p", `
; a comment
# another
// a third
    nop  ; trailing comment
    nop  # trailing
    nop  // trailing
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Code) != 3 {
		t.Fatalf("got %d instructions, want 3", len(prog.Code))
	}
}

func TestBranchOffsets(t *testing.T) {
	prog, err := baseAsm(t).Assemble("p", `
start:
    movi a1, 3
loop:
    addi a1, a1, -1
    bnez a1, loop
    beq  a1, a2, fwd
    nop
fwd:
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	// bnez at index 2, loop at index 1 -> offset 1-2-1 = -2.
	if prog.Code[2].Imm != -2 {
		t.Fatalf("backward branch offset = %d, want -2", prog.Code[2].Imm)
	}
	// beq at index 3, fwd at 5 -> offset +1.
	if prog.Code[3].Imm != 1 {
		t.Fatalf("forward branch offset = %d, want 1", prog.Code[3].Imm)
	}
}

func TestJumpAbsolute(t *testing.T) {
	prog, err := baseAsm(t).Assemble("p", `
    j target
    nop
target:
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Code[0].Imm != 2 {
		t.Fatalf("jump target = %d, want 2 (absolute word index)", prog.Code[0].Imm)
	}
}

func TestDataSectionAndLabels(t *testing.T) {
	prog, err := baseAsm(t).Assemble("p", `
start:
    movi a1, table
    movi a2, table+8
    l32i a3, a1, 0
    ret
.data 0x2000
table:
.word 1, 2, 3
.byte 7, 8
.align 4
aligned:
.word 9
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Code[0].Imm != 0x2000 {
		t.Fatalf("table = %#x", prog.Code[0].Imm)
	}
	if prog.Code[1].Imm != 0x2008 {
		t.Fatalf("table+8 = %#x", prog.Code[1].Imm)
	}
	if len(prog.Data) != 1 {
		t.Fatalf("segments = %d", len(prog.Data))
	}
	seg := prog.Data[0]
	if seg.Addr != 0x2000 {
		t.Fatalf("segment addr = %#x", seg.Addr)
	}
	// 3 words + 2 bytes + 2 pad + 1 word = 20 bytes.
	if len(seg.Bytes) != 20 {
		t.Fatalf("segment length = %d, want 20", len(seg.Bytes))
	}
	if seg.Bytes[0] != 1 || seg.Bytes[4] != 2 || seg.Bytes[12] != 7 || seg.Bytes[16] != 9 {
		t.Fatalf("segment contents wrong: %v", seg.Bytes)
	}
}

func TestSpaceDirective(t *testing.T) {
	prog, err := baseAsm(t).Assemble("p", `
    nop
.data 0x1000
buf:
.space 16
after:
.word 5
`)
	if err != nil {
		t.Fatal(err)
	}
	seg := prog.Data[0]
	if len(seg.Bytes) != 20 || seg.Bytes[16] != 5 {
		t.Fatalf("space layout wrong: %d bytes", len(seg.Bytes))
	}
}

func TestUncachedSection(t *testing.T) {
	prog, err := baseAsm(t).Assemble("p", `
    nop
.uncached
    nop
    nop
.cached
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, false}
	for i, w := range want {
		if prog.IsUncached(i) != w {
			t.Fatalf("uncached[%d] = %v, want %v", i, prog.IsUncached(i), w)
		}
	}
}

func TestEntryDefaultsAndStart(t *testing.T) {
	prog, err := baseAsm(t).Assemble("p", "    nop\nstart:\n    ret\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry != 1 {
		t.Fatalf("entry = %d, want 1 (start label)", prog.Entry)
	}
	prog2, err := baseAsm(t).Assemble("p", "    ret\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog2.Entry != 0 {
		t.Fatalf("default entry = %d", prog2.Entry)
	}
}

func TestBranchImmediateForm(t *testing.T) {
	prog, err := baseAsm(t).Assemble("p", `
start:
    beqi a1, -4, start
    bbsi a2, 31, start
`)
	if err != nil {
		t.Fatal(err)
	}
	if int8(prog.Code[0].Rt<<2)>>2 != -4 {
		t.Fatalf("beqi constant = %d", prog.Code[0].Rt)
	}
	if prog.Code[1].Rt != 31 {
		t.Fatalf("bbsi bit = %d", prog.Code[1].Rt)
	}
}

func TestCustomMnemonics(t *testing.T) {
	ext := &tie.Extension{
		Name: "e",
		Instructions: []*tie.Instruction{
			{
				Name: "frob", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{{
					Component: hwlib.Component{Name: "u", Cat: hwlib.Shifter, Width: 32},
				}},
				Semantics: func(_ *tie.State, op tie.Operands) uint32 { return op.RsVal },
			},
		},
	}
	comp, err := tie.Compile(ext)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := New(comp).Assemble("p", "    frob a1, a2, a3\n    ret\n")
	if err != nil {
		t.Fatal(err)
	}
	in := prog.Code[0]
	if in.Op != isa.OpCUSTOM || in.CustomID != 0 || in.Rd != 1 || in.Rs != 2 || in.Rt != 3 {
		t.Fatalf("custom instruction = %+v", in)
	}
	// Wrong arity must be diagnosed.
	if _, err := New(comp).Assemble("p", "    frob a1, a2\n"); err == nil {
		t.Fatal("short custom operand list accepted")
	}
}

func TestErrorDiagnostics(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"    bogus a1, a2\n", "unknown mnemonic"},
		{"    add a1, a2\n", "takes 3 operands"},
		{"    movi a99, 5\n", "invalid register"},
		{"    movi a1, nowhere\n", "undefined symbol"},
		{"lbl:\nlbl:\n    nop\n", "duplicate label"},
		{"    .bogusdir 5\n", "unknown directive"},
		{".word 1\n", "outside data section"},
		{"    beqi a1, 99, 0\n", "out of range"},
		{".data 0x100\n    add a1, a2, a3\n", "instruction inside data section"},
		{"1bad:\n    nop\n", "invalid label"},
		{".data 0x100\n.byte 300\n", "out of range"},
	}
	for _, tc := range cases {
		_, err := baseAsm(t).Assemble("p", tc.src)
		if err == nil {
			t.Errorf("source %q assembled, want error containing %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error %q does not contain %q", err.Error(), tc.want)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := baseAsm(t).Assemble("myprog", "    nop\n    bogus\n")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "myprog:2:") {
		t.Fatalf("error lacks position: %v", err)
	}
}

func TestTrailingLabel(t *testing.T) {
	prog, err := baseAsm(t).Assemble("p", `
    j end
    nop
end:
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Code[0].Imm != 2 {
		t.Fatalf("end label = %d, want 2 (end of code)", prog.Code[0].Imm)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble(baseAsm(t), "p", "    bogus\n")
}

func TestNumericFormats(t *testing.T) {
	prog, err := baseAsm(t).Assemble("p", `
    movi a1, 0x10
    movi a2, -42
    slli a3, a1, 4
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Code[0].Imm != 16 || prog.Code[1].Imm != -42 || prog.Code[2].Imm != 4 {
		t.Fatalf("immediates: %d %d %d", prog.Code[0].Imm, prog.Code[1].Imm, prog.Code[2].Imm)
	}
}

func TestCustomImmediateForm(t *testing.T) {
	ext := &tie.Extension{
		Name: "e",
		Instructions: []*tie.Instruction{
			{
				Name: "roti", Latency: 1, ReadsGeneral: true, WritesGeneral: true, ImmOperand: true,
				Datapath: []tie.DatapathElem{{
					Component: hwlib.Component{Name: "u", Cat: hwlib.Shifter, Width: 32},
				}},
				Semantics: func(_ *tie.State, op tie.Operands) uint32 {
					sh := uint(op.Imm) & 31
					return op.RsVal<<sh | op.RsVal>>(32-sh)
				},
			},
		},
	}
	comp, err := tie.Compile(ext)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := New(comp).Assemble("p", "    roti a1, a2, -3\n    roti a3, a4, 31\n    ret\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Code[0].Rt != 0x3D { // -3 as a 6-bit constant
		t.Fatalf("immediate encoding = %d", prog.Code[0].Rt)
	}
	if prog.Code[1].Rt != 31 {
		t.Fatalf("immediate encoding = %d", prog.Code[1].Rt)
	}
	// Out-of-range immediate must be rejected.
	if _, err := New(comp).Assemble("p", "    roti a1, a2, 32\n"); err == nil {
		t.Fatal("oversized custom immediate accepted")
	}
	// A register where an immediate is expected parses as a symbol error.
	if _, err := New(comp).Assemble("p", "    roti a1, a2, a3\n"); err == nil {
		t.Fatal("register accepted as custom immediate")
	}
}

func TestEquDirective(t *testing.T) {
	prog, err := baseAsm(t).Assemble("p", `
.equ SIZE, 64
.equ BASE, 0x1000
.equ DERIVED, BASE+8
start:
    movi a1, SIZE
    movi a2, BASE
    movi a3, DERIVED
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Code[0].Imm != 64 || prog.Code[1].Imm != 0x1000 || prog.Code[2].Imm != 0x1008 {
		t.Fatalf("equ values: %d %d %d", prog.Code[0].Imm, prog.Code[1].Imm, prog.Code[2].Imm)
	}
	// Errors: arity, bad name, duplicate.
	if _, err := baseAsm(t).Assemble("p", ".equ X\n    nop\n"); err == nil {
		t.Fatal("short .equ accepted")
	}
	if _, err := baseAsm(t).Assemble("p", ".equ 1X, 5\n    nop\n"); err == nil {
		t.Fatal("bad .equ name accepted")
	}
	if _, err := baseAsm(t).Assemble("p", ".equ X, 1\n.equ X, 2\n    nop\n"); err == nil {
		t.Fatal("duplicate .equ accepted")
	}
}

func TestMoreOperandErrors(t *testing.T) {
	// Exercise per-format operand validation paths.
	cases := []string{
		"    add a1, a2, 5\n",    // RRR with immediate
		"    add a1, 7, a2\n",    // RRR with immediate rs
		"    addi a1, 9, 5\n",    // RRI with immediate rs
		"    neg a1\n",           // RR arity
		"    neg a1, 5\n",        // RR with immediate
		"    movi 5, 1\n",        // RI with immediate rd
		"    movi a1\n",          // RI arity
		"    l32i a1, 4, 0\n",    // Mem with immediate base
		"    beq a1, a2\n",       // branch arity
		"    beq 3, a2, 0\n",     // branch immediate rs
		"    beq a1, 3, 0\n",     // branch immediate rt
		"    beqi a1, xyz, 0\n",  // undefined constant
		"    beqz 4, 0\n",        // branchR immediate rs
		"    beqz a1\n",          // branchR arity
		"    j\n",                // jump arity
		"    j nowhere\n",        // undefined jump target
		"    jx 5\n",             // jumpR immediate
		"    jx a1, a2\n",        // jumpR arity
		"    ret a1\n",           // none-format with operand
		"    slli a1, a2, bad\n", // unresolvable immediate
		".data 0x10, 0x20\n",     // directive arity
		".data xyz\n",            // non-numeric directive arg
		".data -4\n",             // negative directive arg
		".space 2\n",             // .space outside data
		".align 3\n.data 0x10\n", // .align outside data
		".data 0x10\n.align 3\n", // non-power-of-two align
		"    movi a1, \n",        // empty operand
	}
	for _, src := range cases {
		if _, err := baseAsm(t).Assemble("p", src); err == nil {
			t.Errorf("source %q assembled, want error", src)
		}
	}
	// Jump to a data label is rejected.
	if _, err := baseAsm(t).Assemble("p", ".data 0x100\nd: .word 1\n.text\n    j d\n"); err == nil {
		t.Error("jump to data label accepted")
	}
	// Data label before .data is rejected.
	if _, err := baseAsm(t).Assemble("p", ".data 0x100\n.text\n    nop\n.word 3\n"); err == nil {
		t.Error(".word after .text accepted")
	}
}

func TestMustAssembleSucceeds(t *testing.T) {
	prog := MustAssemble(baseAsm(t), "p", "    ret\n")
	if len(prog.Code) != 1 {
		t.Fatal("MustAssemble wrong")
	}
}

func TestSymbolPlusOffsetInBranch(t *testing.T) {
	// label+offset in a branch position falls back to the raw value
	// rather than pc-relative conversion; numeric offsets work.
	prog, err := baseAsm(t).Assemble("p", `
start:
    beq a1, a2, 1
    nop
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Code[0].Imm != 1 {
		t.Fatalf("numeric branch offset = %d", prog.Code[0].Imm)
	}
}
