package asm_test

import (
	"fmt"

	"xtenergy/internal/asm"
	"xtenergy/internal/tie"
)

// Assemble turns XT32 source into an executable program; labels become
// branch offsets or data addresses.
func ExampleAssembler_Assemble() {
	comp, _ := tie.Compile(nil)
	prog, err := asm.New(comp).Assemble("demo", `
.equ N, 3
start:
    movi a2, N
loop:
    addi a2, a2, -1
    bnez a2, loop
    ret
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d instructions, entry %d\n", len(prog.Code), prog.Entry)
	fmt.Println(prog.Code[0])
	// Output:
	// 4 instructions, entry 0
	// movi a2, 3
}
