package asm

import (
	"testing"

	"xtenergy/internal/tie"
)

// FuzzAssemble checks that arbitrary source text never panics the
// assembler: it must either produce a valid program or a positioned
// error.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"ret\n",
		"start:\n    movi a1, 5\n    ret\n",
		"loop:\n    addi a1, a1, -1\n    bnez a1, loop\n",
		".data 0x1000\nx: .word 1, 2\n.text\n    l32i a1, a2, 0\n",
		"lbl: lbl2:\n    j lbl\n",
		".uncached\n    nop\n.cached\n",
		"    beqi a1, -32, 0\n",
		"    movi a1, sym+4\nsym:\n",
		"; comment only",
		":\n",
		".word",
		"\x00\x01\x02",
		"    add a1, a2, a3, a4\n",
		"    movi a1, 99999999999999999999\n",
	}
	comp, err := tie.Compile(nil)
	if err != nil {
		f.Fatal(err)
	}
	a := New(comp)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := a.Assemble("fuzz", src)
		if err == nil && prog != nil {
			// Any accepted program must pass its own validation.
			if verr := prog.Validate(); verr != nil {
				t.Fatalf("assembler accepted invalid program: %v", verr)
			}
		}
	})
}
