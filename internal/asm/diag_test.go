package asm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"xtenergy/internal/hwlib"
	"xtenergy/internal/iss"
	"xtenergy/internal/tie"
)

// immAsm returns an assembler with one immediate-form custom mnemonic
// (rotk) for exercising the [-32,31] constant range diagnostic.
func immAsm(t *testing.T) *Assembler {
	t.Helper()
	comp, err := tie.Compile(&tie.Extension{
		Name: "d",
		Instructions: []*tie.Instruction{{
			Name: "rotk", Latency: 1, ReadsGeneral: true, WritesGeneral: true, ImmOperand: true,
			Datapath: []tie.DatapathElem{{
				Component: hwlib.Component{Name: "u", Cat: hwlib.TIEAdd, Width: 32},
			}},
			Semantics: func(_ *tie.State, op tie.Operands) uint32 { return op.RsVal },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(comp)
}

// TestDiagnosticLineNumbers asserts that every diagnostic class carries
// the exact source line in the structured *Error — not just somewhere in
// the message text.
func TestDiagnosticLineNumbers(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine int
		wantMsg  string
	}{
		{"duplicate_label", "    nop\nlbl:\n    nop\nlbl:\n    ret\n", 4, "duplicate label"},
		{"duplicate_equ", ".equ K, 1\n.equ K, 2\n", 2, "duplicate symbol"},
		{"undefined_symbol", "    nop\n    movi a1, nowhere\n", 2, "undefined symbol"},
		{"invalid_register", "    nop\n    nop\n    movi a99, 5\n", 3, "invalid register"},
		{"branchri_constant_range", "    nop\n    beqi a1, 99, 0\n", 2, "out of range [-32,63]"},
		{"custom_imm_range", "    nop\n    rotk a1, a2, 40\n", 2, "out of range [-32,31]"},
		{"byte_range", ".data 0x100\n.byte 1, 2\n.byte 300\n", 3, "out of range"},
		{"unknown_mnemonic", "    nop\n\n    bogus a1\n", 3, "unknown mnemonic"},
		{"wrong_arity", "    nop\n    add a1, a2\n", 2, "takes 3 operands"},
		{"branch_target_range", "    nop\n    beq a1, a2, 99\n    ret\n", 2, "out of range [0,3]"},
		{"branchr_target_range", "    bnez a1, -5\n    ret\n", 1, "out of range [0,2]"},
		{"jump_target_range", "    nop\n    j 17\n    ret\n", 2, "out of range [0,3]"},
		{"loop_backward_end", "back:\n    movi a2, 3\n    loop a2, back\n    ret\n", 3, "out of range"},
		{"loop_end_past_code", "    movi a2, 3\n    loop a2, 9\n    ret\n", 2, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := immAsm(t).Assemble("p", tc.src)
			if err == nil {
				t.Fatalf("source assembled, want error containing %q", tc.wantMsg)
			}
			var ae *Error
			if !errors.As(err, &ae) {
				t.Fatalf("error %T is not *asm.Error: %v", err, err)
			}
			if ae.Line != tc.wantLine {
				t.Errorf("Line = %d, want %d (%v)", ae.Line, tc.wantLine, err)
			}
			if ae.Program != "p" {
				t.Errorf("Program = %q, want %q", ae.Program, "p")
			}
			if !strings.Contains(ae.Msg, tc.wantMsg) {
				t.Errorf("Msg %q does not contain %q", ae.Msg, tc.wantMsg)
			}
		})
	}
}

// TestProgramLines verifies the instruction→source-line table: blank
// lines, comments, labels, and directives must not shift the mapping.
func TestProgramLines(t *testing.T) {
	prog, err := baseAsm(t).Assemble("p", `; header comment

start:
    movi a1, 1      ; line 4
    add  a2, a1, a1 ; line 5

done:
    ret             ; line 8
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 5, 8}
	if len(prog.Lines) != len(want) {
		t.Fatalf("Lines = %v, want %v", prog.Lines, want)
	}
	for i, w := range want {
		if prog.Line(i) != w {
			t.Errorf("Line(%d) = %d, want %d", i, prog.Line(i), w)
		}
	}
	if prog.Line(-1) != 0 || prog.Line(len(prog.Code)) != 0 {
		t.Error("out-of-range Line() must return 0")
	}
}

// TestWithProgramCheck verifies that registered checks run on the
// assembled program and that their errors fail the assembly.
func TestWithProgramCheck(t *testing.T) {
	comp, err := tie.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	var seen *iss.Program
	ok := New(comp, WithProgramCheck(func(p *iss.Program) error {
		seen = p
		return nil
	}))
	prog, err := ok.Assemble("p", "    nop\n    ret\n")
	if err != nil {
		t.Fatal(err)
	}
	if seen != prog {
		t.Fatal("check did not receive the assembled program")
	}

	bad := New(comp, WithProgramCheck(func(p *iss.Program) error {
		return fmt.Errorf("lint: program %s rejected", p.Name)
	}))
	if _, err := bad.Assemble("p", "    nop\n"); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("check error not propagated: %v", err)
	}
}
