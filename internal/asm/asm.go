// Package asm implements a two-pass assembler for XT32 programs,
// standing in for the cross-compiler of the paper's flow: test programs
// and application benchmarks are written in XT32 assembly (optionally
// using TIE custom-instruction mnemonics) and assembled into iss.Program
// images for instruction-set simulation.
//
// Syntax overview:
//
//	; comment            (also "#" and "//")
//	start:               ; code label
//	    movi  a1, 100
//	    movi  a2, table  ; labels usable as immediates
//	    add   a3, a1, a2
//	    beq   a1, a3, done
//	    call  func
//	    ret
//	.uncached            ; following code lies in the uncached region
//	.cached
//	.equ  SIZE, 64       ; symbolic constant
//	.data 0x1000         ; set the data cursor
//	table:               ; data label = current data address
//	.word 1, 2, 0x30
//	.byte 1, 2, 3
//	.space 64
//
// Custom instructions use the mnemonics of the processor's compiled TIE
// extension and take three operands: "gfmul a2, a3, a4". Instructions
// declared with ImmOperand take a small signed constant as the third
// operand instead: "rotacc a2, a3, 5".
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/plan"
	"xtenergy/internal/tie"
)

// Assembler translates XT32 assembly source into executable programs.
type Assembler struct {
	custom map[string]customDef
	checks []func(*iss.Program) error
}

type customDef struct {
	id  uint8
	imm bool // third operand is a small signed constant
}

// Option configures an Assembler.
type Option func(*Assembler)

// WithProgramCheck registers a validation pass that runs over every
// successfully assembled program before Assemble returns it; a non-nil
// error fails the assembly. This is how callers plug in analyses that
// live above the assembler in the dependency graph (xlint.AsmCheck wraps
// the static analyzer into this shape) without the assembler importing
// them.
func WithProgramCheck(check func(*iss.Program) error) Option {
	return func(a *Assembler) { a.checks = append(a.checks, check) }
}

// New returns an assembler that recognizes the custom-instruction
// mnemonics of comp (pass the result of tie.Compile; a base-only
// compiled extension is fine).
func New(comp *tie.Compiled, opts ...Option) *Assembler {
	a := &Assembler{custom: make(map[string]customDef)}
	if comp != nil && comp.Ext != nil {
		for id, in := range comp.Ext.Instructions {
			a.custom[in.Name] = customDef{id: uint8(id), imm: in.ImmOperand}
		}
	}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// Error is an assembly diagnostic with source position.
type Error struct {
	Program string
	Line    int
	Msg     string
}

func (e *Error) Error() string {
	return fmt.Sprintf("asm: %s:%d: %s", e.Program, e.Line, e.Msg)
}

type symbol struct {
	value  int64
	isCode bool
}

type sourceLine struct {
	num    int
	labels []labelRef
	op     string   // mnemonic or directive (with leading '.'), lower case
	args   []string // comma-separated operand fields, trimmed
}

// labelRef remembers where a label was written, which may be an earlier
// line than the instruction it attaches to — diagnostics about the label
// itself (e.g. a duplicate) must point at the label's own line.
type labelRef struct {
	name string
	line int
}

// Assemble translates src into a program named name.
func (a *Assembler) Assemble(name, src string) (*iss.Program, error) {
	lines, err := scan(name, src)
	if err != nil {
		return nil, err
	}

	// Pass 1: assign label values, size the code, lay out data.
	syms := make(map[string]symbol)
	codeIdx := 0
	dataCursor := int64(-1)
	inData := false
	define := func(lbl labelRef) error {
		if _, dup := syms[lbl.name]; dup {
			return &Error{name, lbl.line, fmt.Sprintf("duplicate label %q", lbl.name)}
		}
		if inData {
			if dataCursor < 0 {
				return &Error{name, lbl.line, "data label before .data directive"}
			}
			syms[lbl.name] = symbol{value: dataCursor}
		} else {
			syms[lbl.name] = symbol{value: int64(codeIdx), isCode: true}
		}
		return nil
	}
	for i := range lines {
		ln := &lines[i]
		for _, lbl := range ln.labels {
			if err := define(lbl); err != nil {
				return nil, err
			}
		}
		if ln.op == "" {
			continue
		}
		if strings.HasPrefix(ln.op, ".") {
			switch ln.op {
			case ".equ":
				// .equ NAME, value — a symbolic constant.
				if len(ln.args) != 2 {
					return nil, &Error{name, ln.num, ".equ takes a name and a value"}
				}
				if !isIdent(ln.args[0]) {
					return nil, &Error{name, ln.num, fmt.Sprintf("invalid .equ name %q", ln.args[0])}
				}
				if _, dup := syms[ln.args[0]]; dup {
					return nil, &Error{name, ln.num, fmt.Sprintf("duplicate symbol %q", ln.args[0])}
				}
				v, err := a.resolve(ln.args[1], syms, ln, name)
				if err != nil {
					return nil, err
				}
				syms[ln.args[0]] = symbol{value: v}
			case ".data":
				inData = true
				v, err := parseNumber(ln.args, ln, name)
				if err != nil {
					return nil, err
				}
				dataCursor = v
			case ".text", ".cached", ".uncached":
				inData = false
			case ".word":
				if err := needData(ln, name, inData, dataCursor); err != nil {
					return nil, err
				}
				dataCursor += int64(4 * len(ln.args))
			case ".byte":
				if err := needData(ln, name, inData, dataCursor); err != nil {
					return nil, err
				}
				dataCursor += int64(len(ln.args))
			case ".space":
				if err := needData(ln, name, inData, dataCursor); err != nil {
					return nil, err
				}
				v, err := parseNumber(ln.args, ln, name)
				if err != nil {
					return nil, err
				}
				dataCursor += v
			case ".align":
				if err := needData(ln, name, inData, dataCursor); err != nil {
					return nil, err
				}
				v, err := parseNumber(ln.args, ln, name)
				if err != nil {
					return nil, err
				}
				if v <= 0 || v&(v-1) != 0 {
					return nil, &Error{name, ln.num, fmt.Sprintf(".align %d is not a power of two", v)}
				}
				dataCursor = (dataCursor + v - 1) &^ (v - 1)
			default:
				return nil, &Error{name, ln.num, fmt.Sprintf("unknown directive %s", ln.op)}
			}
			continue
		}
		if inData {
			return nil, &Error{name, ln.num, "instruction inside data section (missing .text?)"}
		}
		codeIdx++
	}

	// Pass 2: emit.
	prog := &iss.Program{Name: name}
	var uncachedFlags []bool
	uncached := false
	inData = false
	dataCursor = -1
	var segs []iss.Segment
	var curSeg *iss.Segment
	startSeg := func(addr int64) {
		segs = append(segs, iss.Segment{Addr: uint32(addr)})
		curSeg = &segs[len(segs)-1]
	}
	emitBytes := func(bs ...byte) {
		curSeg.Bytes = append(curSeg.Bytes, bs...)
		dataCursor += int64(len(bs))
	}

	for i := range lines {
		ln := &lines[i]
		if ln.op == "" {
			continue
		}
		if strings.HasPrefix(ln.op, ".") {
			switch ln.op {
			case ".data":
				inData = true
				v, _ := parseNumber(ln.args, ln, name)
				dataCursor = v
				startSeg(v)
			case ".text", ".cached":
				inData = false
				uncached = false
			case ".uncached":
				inData = false
				uncached = true
			case ".word":
				for _, arg := range ln.args {
					v, err := a.resolve(arg, syms, ln, name)
					if err != nil {
						return nil, err
					}
					emitBytes(byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
				}
			case ".byte":
				for _, arg := range ln.args {
					v, err := a.resolve(arg, syms, ln, name)
					if err != nil {
						return nil, err
					}
					if v < -128 || v > 255 {
						return nil, &Error{name, ln.num, fmt.Sprintf("byte value %d out of range", v)}
					}
					emitBytes(byte(v))
				}
			case ".space":
				v, _ := parseNumber(ln.args, ln, name)
				emitBytes(make([]byte, v)...)
			case ".align":
				v, _ := parseNumber(ln.args, ln, name)
				pad := (v - dataCursor%v) % v
				emitBytes(make([]byte, pad)...)
			case ".equ":
				// Defined in pass 1; nothing to emit.
			}
			continue
		}
		in, err := a.encodeLine(ln, syms, len(prog.Code), name)
		if err != nil {
			return nil, err
		}
		prog.Code = append(prog.Code, in)
		prog.Lines = append(prog.Lines, ln.num)
		uncachedFlags = append(uncachedFlags, uncached)
	}

	for _, f := range uncachedFlags {
		if f {
			prog.Uncached = uncachedFlags
			break
		}
	}
	for _, s := range segs {
		if len(s.Bytes) > 0 {
			prog.Data = append(prog.Data, s)
		}
	}
	if ent, ok := syms["start"]; ok && ent.isCode {
		prog.Entry = int(ent.value)
	}
	prog.Labels = make(map[string]int)
	for name, sym := range syms {
		if sym.isCode {
			prog.Labels[name] = int(sym.value)
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if err := checkTargets(prog); err != nil {
		return nil, err
	}
	for _, check := range a.checks {
		if err := check(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// checkTargets verifies that every statically known control-flow target
// lands inside the program: branch and jump destinations in [0, n]
// (index n is the fall-off-the-end halt) and zero-overhead loop ends in
// (pc+1, n]. The simulator faults at runtime on these; catching them at
// assembly time turns a mid-simulation error into a file:line diagnostic.
func checkTargets(prog *iss.Program) error {
	n := len(prog.Code)
	bad := func(i int, format string, args ...any) error {
		return &Error{prog.Name, prog.Line(i), fmt.Sprintf(format, args...)}
	}
	for i, in := range prog.Code {
		d, ok := isa.Lookup(in.Op)
		if !ok {
			continue
		}
		switch {
		case in.Op == isa.OpLOOP || in.Op == isa.OpLOOPNEZ:
			if end := i + 1 + int(in.Imm); end <= i+1 || end > n {
				return bad(i, "%s end %d out of range (%d,%d]", in.Op.Name(), end, i+1, n)
			}
		case d.Format == isa.FormatBranchRR || d.Format == isa.FormatBranchRI || d.Format == isa.FormatBranchR:
			if t := i + 1 + int(in.Imm); t < 0 || t > n {
				return bad(i, "%s target %d out of range [0,%d]", in.Op.Name(), t, n)
			}
		case d.Format == isa.FormatJump:
			if t := int(in.Imm); t < 0 || t > n {
				return bad(i, "%s target %d out of range [0,%d]", in.Op.Name(), t, n)
			}
		}
	}
	return nil
}

func needData(ln *sourceLine, name string, inData bool, cursor int64) error {
	if !inData || cursor < 0 {
		return &Error{name, ln.num, ln.op + " outside data section"}
	}
	return nil
}

// encodeLine assembles one instruction line.
func (a *Assembler) encodeLine(ln *sourceLine, syms map[string]symbol, pc int, name string) (isa.Instr, error) {
	fail := func(format string, args ...any) (isa.Instr, error) {
		return isa.Instr{}, &Error{name, ln.num, fmt.Sprintf(format, args...)}
	}
	if cd, ok := a.custom[ln.op]; ok {
		if len(ln.args) != 3 {
			return fail("custom instruction %s takes 3 operands", ln.op)
		}
		var regs [2]uint8
		for i := 0; i < 2; i++ {
			r, err := isa.ParseReg(ln.args[i])
			if err != nil {
				return fail("%v", err)
			}
			regs[i] = r
		}
		in := isa.Instr{Op: isa.OpCUSTOM, CustomID: cd.id, Rd: regs[0], Rs: regs[1]}
		if cd.imm {
			v, err := a.resolve(ln.args[2], syms, ln, name)
			if err != nil {
				return in, err
			}
			rt, ok := plan.EncodeImm6(v)
			if !ok {
				return fail("%s immediate %d out of range [%d,%d]", ln.op, v, plan.MinImm6, plan.MaxImm6)
			}
			in.Rt = rt
		} else {
			r, err := isa.ParseReg(ln.args[2])
			if err != nil {
				return fail("%v", err)
			}
			in.Rt = r
		}
		return in, nil
	}

	op, ok := isa.ByName(ln.op)
	if !ok {
		return fail("unknown mnemonic %q", ln.op)
	}
	d, _ := isa.Lookup(op)
	in := isa.Instr{Op: op}

	reg := func(i int) (uint8, error) {
		r, err := isa.ParseReg(ln.args[i])
		if err != nil {
			return 0, &Error{name, ln.num, err.Error()}
		}
		return r, nil
	}
	imm := func(i int) (int64, error) { return a.resolve(ln.args[i], syms, ln, name) }
	branchTarget := func(i int) (int32, error) {
		v, err := imm(i)
		if err != nil {
			return 0, err
		}
		// A code label becomes a pc-relative word offset.
		if s, ok := syms[strings.TrimSpace(ln.args[i])]; ok && s.isCode {
			return int32(s.value) - int32(pc) - 1, nil
		}
		return int32(v), nil
	}
	want := func(n int) error {
		if len(ln.args) != n {
			return &Error{name, ln.num, fmt.Sprintf("%s takes %d operands, got %d", ln.op, n, len(ln.args))}
		}
		return nil
	}

	var err error
	switch d.Format {
	case isa.FormatRRR:
		if err = want(3); err != nil {
			return in, err
		}
		if in.Rd, err = reg(0); err != nil {
			return in, err
		}
		if in.Rs, err = reg(1); err != nil {
			return in, err
		}
		if in.Rt, err = reg(2); err != nil {
			return in, err
		}
	case isa.FormatRRI, isa.FormatMem:
		if err = want(3); err != nil {
			return in, err
		}
		if in.Rd, err = reg(0); err != nil {
			return in, err
		}
		if in.Rs, err = reg(1); err != nil {
			return in, err
		}
		v, err := imm(2)
		if err != nil {
			return in, err
		}
		in.Imm = int32(v)
	case isa.FormatRR:
		if err = want(2); err != nil {
			return in, err
		}
		if in.Rd, err = reg(0); err != nil {
			return in, err
		}
		if in.Rs, err = reg(1); err != nil {
			return in, err
		}
	case isa.FormatRI:
		if err = want(2); err != nil {
			return in, err
		}
		if in.Rd, err = reg(0); err != nil {
			return in, err
		}
		v, err := imm(1)
		if err != nil {
			return in, err
		}
		in.Imm = int32(v)
	case isa.FormatBranchRR:
		if err = want(3); err != nil {
			return in, err
		}
		if in.Rs, err = reg(0); err != nil {
			return in, err
		}
		if in.Rt, err = reg(1); err != nil {
			return in, err
		}
		off, err := branchTarget(2)
		if err != nil {
			return in, err
		}
		in.Imm = off
	case isa.FormatBranchRI:
		if err = want(3); err != nil {
			return in, err
		}
		if in.Rs, err = reg(0); err != nil {
			return in, err
		}
		c, err := imm(1)
		if err != nil {
			return in, err
		}
		// Signed compares decode the field via plan.DecodeImm6; the
		// unsigned/bit forms read it raw, so the assembler accepts the
		// union of both encodable ranges.
		if c < plan.MinImm6 || c > (1<<plan.Imm6Bits)-1 {
			return fail("%s constant %d out of range [%d,%d]", ln.op, c, plan.MinImm6, (1<<plan.Imm6Bits)-1)
		}
		in.Rt = uint8(c) & ((1 << plan.Imm6Bits) - 1)
		off, err := branchTarget(2)
		if err != nil {
			return in, err
		}
		in.Imm = off
	case isa.FormatBranchR:
		if err = want(2); err != nil {
			return in, err
		}
		if in.Rs, err = reg(0); err != nil {
			return in, err
		}
		off, err := branchTarget(1)
		if err != nil {
			return in, err
		}
		in.Imm = off
	case isa.FormatJump:
		if err = want(1); err != nil {
			return in, err
		}
		v, err := imm(0)
		if err != nil {
			return in, err
		}
		if s, ok := syms[strings.TrimSpace(ln.args[0])]; ok && !s.isCode {
			return fail("%s target %q is a data label", ln.op, ln.args[0])
		}
		in.Imm = int32(v)
	case isa.FormatJumpR:
		if err = want(1); err != nil {
			return in, err
		}
		if in.Rs, err = reg(0); err != nil {
			return in, err
		}
	case isa.FormatNone:
		if err = want(0); err != nil {
			return in, err
		}
	default:
		return fail("cannot assemble format for %s", ln.op)
	}
	return in, nil
}

// resolve evaluates an operand expression: a number, a symbol, or
// symbol+offset / symbol-offset.
func (a *Assembler) resolve(expr string, syms map[string]symbol, ln *sourceLine, name string) (int64, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, &Error{name, ln.num, "empty operand"}
	}
	// Split a trailing +N / -N (but not a leading sign).
	base, off := expr, int64(0)
	for i := 1; i < len(expr); i++ {
		if expr[i] == '+' || expr[i] == '-' {
			o, err := strconv.ParseInt(expr[i:], 0, 64)
			if err == nil {
				base, off = strings.TrimSpace(expr[:i]), o
			}
			break
		}
	}
	if v, err := strconv.ParseInt(base, 0, 64); err == nil {
		return v + off, nil
	}
	if s, ok := syms[base]; ok {
		return s.value + off, nil
	}
	return 0, &Error{name, ln.num, fmt.Sprintf("undefined symbol %q", base)}
}

func parseNumber(args []string, ln *sourceLine, name string) (int64, error) {
	if len(args) != 1 {
		return 0, &Error{name, ln.num, fmt.Sprintf("%s takes one numeric argument", ln.op)}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(args[0]), 0, 64)
	if err != nil {
		return 0, &Error{name, ln.num, fmt.Sprintf("bad number %q", args[0])}
	}
	if v < 0 {
		return 0, &Error{name, ln.num, fmt.Sprintf("%s argument must be non-negative", ln.op)}
	}
	return v, nil
}

// scan tokenizes the source into logical lines.
func scan(name, src string) ([]sourceLine, error) {
	var out []sourceLine
	var pendingLabels []labelRef
	for num, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		lineNum := num + 1

		// Peel off leading labels.
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			lbl := strings.TrimSpace(line[:idx])
			if !isIdent(lbl) {
				return nil, &Error{name, lineNum, fmt.Sprintf("invalid label %q", lbl)}
			}
			pendingLabels = append(pendingLabels, labelRef{name: lbl, line: lineNum})
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}

		var op, rest string
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			op, rest = line[:i], strings.TrimSpace(line[i+1:])
		} else {
			op = line
		}
		ln := sourceLine{num: lineNum, labels: pendingLabels, op: strings.ToLower(op)}
		pendingLabels = nil
		if rest != "" {
			for _, f := range strings.Split(rest, ",") {
				ln.args = append(ln.args, strings.TrimSpace(f))
			}
		}
		out = append(out, ln)
	}
	if len(pendingLabels) > 0 {
		// Labels at end of file attach to a synthetic trailing line so
		// they resolve to the end-of-code index.
		out = append(out, sourceLine{num: strings.Count(src, "\n") + 1, labels: pendingLabels})
	}
	return out, nil
}

func stripComment(s string) string {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ';', '#':
			return s[:i]
		case '/':
			if i+1 < len(s) && s[i+1] == '/' {
				return s[:i]
			}
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// MustAssemble is a convenience for statically known-good sources (used
// by the built-in workload suite); it panics on error.
func MustAssemble(a *Assembler, name, src string) *iss.Program {
	p, err := a.Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}
