// Command xpower runs the RTL-level reference power estimator over one
// workload and prints a WattWatcher-style per-block energy breakdown —
// the slow, accurate view of where an extended processor's energy goes,
// including the base-core vs custom-hardware split.
//
// Usage:
//
//	xpower [-fast] [-j shards] -w <workload>
//	xpower -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"xtenergy/internal/core"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xpower:", err)
		os.Exit(1)
	}
}

func candidates() []core.Workload {
	return workloads.All()
}

func run() error {
	fast := flag.Bool("fast", false, "use the reduced-resolution reference model")
	name := flag.String("w", "", "workload to analyze")
	list := flag.Bool("list", false, "list available workloads")
	profile := flag.Uint64("profile", 0, "also print a power-vs-time profile with this window (cycles)")
	jobs := flag.Int("j", 1, "net-simulation shards per chunk (>1 spreads the jump-ahead lane walks over goroutines; bit-identical)")
	flag.Parse()

	if *list {
		for _, w := range candidates() {
			fmt.Println(w.Name)
		}
		return nil
	}

	var w core.Workload
	found := false
	for _, cand := range candidates() {
		if cand.Name == *name {
			w, found = cand, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown workload %q (try -list)", *name)
	}

	cfg := procgen.Default()
	tech := rtlpower.DefaultTechnology()
	if *fast {
		tech = rtlpower.FastTechnology()
	}

	proc, prog, err := w.Build(cfg)
	if err != nil {
		return err
	}
	est, err := rtlpower.New(proc, tech)
	if err != nil {
		return err
	}

	// One streamed pass: the ISS feeds retired-instruction batches to the
	// incremental estimator through a bounded channel, so no trace is
	// materialized no matter how long the workload runs. The power
	// profile, when requested, hangs off the same pass.
	st := est.Stream()
	st.Shards = *jobs
	var acc *rtlpower.ProfileAccumulator
	if *profile > 0 {
		acc = rtlpower.NewProfileAccumulator(*profile)
		st.OnEntry = acc.OnEntry
	}
	res, err := rtlpower.RunStreamed(context.Background(), iss.New(proc), prog, iss.Options{}, st)
	if err != nil {
		return err
	}
	rep, err := st.Finish()
	if err != nil {
		return err
	}

	fmt.Printf("workload %s: %d instructions, %d cycles\n\n", w.Name, res.Stats.Retired, rep.Cycles)
	rows, err := rep.Breakdown(proc)
	if err != nil {
		return err
	}
	fmt.Print(rtlpower.FormatBreakdown(rows, cfg.ClockMHz, rep.Cycles))

	base, custom, err := rep.BaseCustomSplit(proc)
	if err != nil {
		return err
	}
	if custom > 0 {
		fmt.Printf("\nbase core: %.3f uJ (%.1f%%), custom hardware: %.3f uJ (%.1f%%)\n",
			base*1e-6, 100*base/rep.TotalPJ, custom*1e-6, 100*custom/rep.TotalPJ)
	}

	if acc != nil {
		fmt.Println()
		fmt.Print(rtlpower.FormatProfile(acc.Points(), cfg.ClockMHz))
	}
	return nil
}
