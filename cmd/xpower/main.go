// Command xpower runs the RTL-level reference power estimator over one
// workload and prints a WattWatcher-style per-block energy breakdown —
// the slow, accurate view of where an extended processor's energy goes,
// including the base-core vs custom-hardware split.
//
// The report is rendered by xpowerd.EstimateReport, the same entry
// point the xpowerd daemon serves, so `xpower -remote <addr>` output is
// byte-identical to a local run. Ctrl-C / SIGTERM cancels the streamed
// pipeline through its context.
//
// Usage:
//
//	xpower [-fast] [-j shards] [-profile window] -w <workload>
//	xpower -remote host:port|unix:<path> -w <workload>
//	xpower -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
	"xtenergy/internal/xpowerd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xpower:", err)
		os.Exit(1)
	}
}

func run() error {
	fast := flag.Bool("fast", false, "use the reduced-resolution reference model")
	name := flag.String("w", "", "workload to analyze")
	list := flag.Bool("list", false, "list available workloads")
	profile := flag.Uint64("profile", 0, "also print a power-vs-time profile with this window (cycles)")
	jobs := flag.Int("j", 1, "net-simulation shards per chunk (>1 spreads the jump-ahead lane walks over goroutines; bit-identical)")
	remote := flag.String("remote", "", "send the request to a running xpowerd at this address (host:port or unix:<path>)")
	noCache := flag.Bool("no-cache", false, "bypass the content-addressed artifact cache: always re-run the pipeline, read and write nothing")
	kernel := flag.String("kernel", "", "force a net-simulation walker tier (portable, sse2, avx2, avx512, neon); default: widest supported, or $"+rtlpower.EnvKernel)
	flag.Parse()

	if err := rtlpower.ApplyKernelFlag(*kernel); err != nil {
		fmt.Fprintln(os.Stderr, "xpower:", err)
		os.Exit(2)
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Println(w.Name)
		}
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *remote != "" {
		client, err := xpowerd.Dial(*remote, 5*time.Second)
		if err != nil {
			return err
		}
		defer client.Close()
		resp, err := client.Do(ctx, &xpowerd.Request{
			Op:            xpowerd.OpEstimate,
			Workload:      *name,
			Fast:          *fast,
			Shards:        *jobs,
			ProfileWindow: *profile,
			NoCache:       *noCache,
		})
		if err != nil {
			return err
		}
		fmt.Print(resp.Output)
		return nil
	}

	text, err := xpowerd.EstimateReport(ctx, xpowerd.EstimateParams{
		Workload:      *name,
		Fast:          *fast,
		Shards:        *jobs,
		ProfileWindow: *profile,
		NoCache:       *noCache,
	})
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}
