// Command xsim runs XT32 programs on the instruction-set simulator and
// reports the execution statistics the energy macro-model consumes.
//
// Usage:
//
//	xsim -list               list built-in workloads
//	xsim -w <name>           run a built-in workload (test program or app)
//	xsim <file.s>            assemble and run an XT32 assembly file (base ISA)
//	xsim -disasm -w <name>   print the disassembly instead of running
//	xsim -timeout 5s ...     abort the run after a wall-clock deadline
//
// The plain report (optionally -vars) renders through
// xpowerd.SimulateReport, so repeated identical runs are answered from
// the content-addressed artifact cache; -no-cache forces a fresh
// simulation.
//
// A failed simulation prints a structured fault report to stderr (kind,
// program counter, instruction, cycle, address) and exits 2.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"xtenergy/internal/core"
	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
	"xtenergy/internal/xpowerd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xsim:", err)
		if f, ok := iss.AsFault(err); ok {
			fmt.Fprintf(os.Stderr, "fault report:\n  kind:  %s\n", f.Kind)
			if f.PC >= 0 {
				fmt.Fprintf(os.Stderr, "  pc:    %d\n  instr: %s\n  cycle: %d\n", f.PC, f.Instr.String(), f.Cycle)
			}
			if f.Kind == iss.FaultMem {
				fmt.Fprintf(os.Stderr, "  addr:  %#x\n", f.Addr)
			}
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func allWorkloads() []core.Workload {
	return workloads.All()
}

func run() error {
	list := flag.Bool("list", false, "list built-in workloads")
	name := flag.String("w", "", "run the named built-in workload")
	disasm := flag.Bool("disasm", false, "print disassembly instead of running")
	showVars := flag.Bool("vars", false, "print the 21 macro-model variables")
	netlist := flag.Bool("netlist", false, "print the generated processor's structural netlist")
	traceN := flag.Int("trace", 0, "print the first N trace entries")
	asJSON := flag.Bool("json", false, "emit the statistics and macro-model variables as JSON")
	timeout := flag.Duration("timeout", 0, "abort the run after this wall-clock deadline (0 = none)")
	maxCycles := flag.Uint64("maxcycles", 0, "watchdog cycle limit (0 = default)")
	noCache := flag.Bool("no-cache", false, "bypass the content-addressed artifact cache: always re-run the simulator")
	kernel := flag.String("kernel", "", "force a net-simulation walker tier (portable, sse2, avx2, avx512, neon); default: widest supported, or $"+rtlpower.EnvKernel)
	flag.Parse()

	if err := rtlpower.ApplyKernelFlag(*kernel); err != nil {
		fmt.Fprintln(os.Stderr, "xsim:", err)
		os.Exit(2)
	}

	cfg := procgen.Default()

	if *list {
		for _, w := range allWorkloads() {
			ext := "base"
			if w.Ext != nil {
				ext = "tie:" + w.Ext.Name
			}
			fmt.Printf("%-24s %s\n", w.Name, ext)
		}
		return nil
	}

	var w core.Workload
	switch {
	case *name != "":
		found := false
		for _, cand := range allWorkloads() {
			if cand.Name == *name {
				w, found = cand, true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown workload %q (try -list)", *name)
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		w = core.Workload{Name: flag.Arg(0), Source: string(src)}
	default:
		flag.Usage()
		return fmt.Errorf("need -list, -w <name>, or an assembly file")
	}

	if *disasm {
		_, prog, err := w.Build(cfg)
		if err != nil {
			return err
		}
		fmt.Print(isa.Disassemble(prog.Code))
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// The plain report (optionally -vars) renders through the
	// daemon-shared entry point, so a repeated run is answered from the
	// content-addressed artifact cache instead of re-simulating. The
	// richer modes (netlist, trace, JSON, a custom watchdog) keep the
	// direct local flow, which never consults the cache.
	if !*netlist && *traceN == 0 && !*asJSON && *maxCycles == 0 {
		p := xpowerd.SimulateParams{Vars: *showVars, NoCache: *noCache}
		if *name != "" {
			p.Workload = *name
		} else {
			p.Source, p.SourceName = w.Source, w.Name
		}
		text, err := xpowerd.SimulateReport(ctx, p)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}

	proc, prog, err := w.Build(cfg)
	if err != nil {
		return err
	}
	if *netlist {
		return proc.WriteNetlist(os.Stdout)
	}
	res, err := iss.New(proc).RunContext(ctx, prog, iss.Options{CollectTrace: *traceN > 0, MaxCycles: *maxCycles})
	if err != nil {
		return err
	}
	if *traceN > 0 {
		n := *traceN
		if n > len(res.Trace) {
			n = len(res.Trace)
		}
		for i := 0; i < n; i++ {
			te := res.Trace[i]
			events := ""
			if te.ICMiss {
				events += " icmiss"
			}
			if te.DCMiss {
				events += " dcmiss"
			}
			if te.Uncached {
				events += " uncached"
			}
			if te.Interlock {
				events += " interlock"
			}
			if te.Taken {
				events += " taken"
			}
			fmt.Printf("%6d  pc=%-6d %-28s cycles=%-3d rs=%#x rt=%#x res=%#x%s\n",
				i, te.PC, te.Instr.String(), te.Cycles, te.RsVal, te.RtVal, te.Result, events)
		}
		fmt.Println()
	}
	if *asJSON {
		vars, err := core.Extract(proc.TIE, &res.Stats)
		if err != nil {
			return err
		}
		named := map[string]float64{}
		for i, v := range vars {
			if v != 0 {
				named[core.VarName(i)] = v
			}
		}
		out := map[string]any{
			"workload":     w.Name,
			"instructions": len(prog.Code),
			"cycles":       res.Stats.Cycles,
			"retired":      res.Stats.Retired,
			"cpi":          res.Stats.CPI(),
			"variables":    named,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Printf("workload %s (%d instructions)\n", w.Name, len(prog.Code))
	fmt.Print(res.Stats.String())

	if *showVars {
		vars, err := core.Extract(proc.TIE, &res.Stats)
		if err != nil {
			return err
		}
		fmt.Println("macro-model variables:")
		for i, v := range vars {
			if v != 0 {
				fmt.Printf("  %-20s %14.1f\n", core.VarName(i), v)
			}
		}
	}
	return nil
}
