// Command characterize builds the energy macro-model for the default
// extensible-processor configuration by running the full
// characterization flow (Fig. 2 of the paper, steps 1-8) over the test
// program suite, then prints the recovered Table I coefficients and the
// Fig. 3 fitting-error profile.
//
// Usage:
//
//	characterize [-fast] [-ridge λ] [-nonneg] [-timeout d] [-retries n] [-partial] [-j n]
//
// Exit status: 0 on a clean run, 1 when -partial dropped failed
// workloads (the failure report goes to stderr; stdout stays
// machine-parseable), 2 on a hard failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"xtenergy/internal/core"
	"xtenergy/internal/experiments"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(2)
}

func main() {
	fast := flag.Bool("fast", false, "use the reduced-resolution reference model (quicker, slightly noisier)")
	ridge := flag.Float64("ridge", 0, "ridge regularization strength for the regression")
	nonneg := flag.Bool("nonneg", false, "constrain energy coefficients to be nonnegative")
	save := flag.String("save", "", "write the characterized model to this JSON file")
	timeout := flag.Duration("timeout", 0, "per-workload reference-measurement deadline (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts for transiently-failing workloads")
	backoff := flag.Duration("backoff", 0, "base delay between retry attempts, growing exponentially (0 = 100ms default, negative = retry immediately)")
	partial := flag.Bool("partial", false, "drop failed workloads and fit on the survivors (degraded runs exit 1)")
	jobs := flag.Int("j", 0, "concurrent workload measurements (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	suite := experiments.Default()
	if *fast {
		suite = experiments.Fast()
	}
	suite.Ctx = ctx
	suite.Regress.Ridge = *ridge
	suite.Regress.NonNegative = *nonneg
	suite.Timeout = *timeout
	suite.Retries = *retries
	suite.Backoff = *backoff
	suite.Partial = *partial
	suite.Parallelism = *jobs

	cr, err := suite.Characterization()
	if err != nil {
		fail(err)
	}

	rows, err := suite.Table1()
	if err != nil {
		fail(err)
	}
	fmt.Print(experiments.FormatTable1(rows))
	fmt.Println()

	fig3, err := suite.Fig3()
	if err != nil {
		fail(err)
	}
	fmt.Print(experiments.FormatFig3(fig3))
	fmt.Printf("\nregression: %d observations, R^2 = %.4f, condition estimate = %.1f\n",
		len(cr.Observations), cr.Model.Fit.R2, cr.Model.Fit.CondEstimate)

	if *save != "" {
		if err := cr.Model.Save(*save); err != nil {
			fail(err)
		}
		fmt.Println("model written to", *save)
	}

	if cr.Degraded() {
		fmt.Fprint(os.Stderr, core.FormatFailures(cr.Failures))
		os.Exit(1)
	}
}
