// Command xlint statically analyzes XT32+TIE programs: control-flow and
// dataflow diagnostics (uninitialized reads, dead writes, unreachable
// code, guaranteed interlocks, operand validity) and simulation-free
// energy bounds from a fitted macro-model.
//
// Usage:
//
//	xlint -list                     list built-in workloads
//	xlint -w <name>                 analyze a built-in workload
//	xlint <file.s>                  assemble and analyze an assembly file (base ISA)
//	xlint -energy-bounds -w <name>  static per-invocation energy bounds
//	xlint -wcec -w <name>           concrete worst/best-case energy (trip counts inferred)
//	xlint -model fit.json ...       price bounds with a fitted model instead of unit coefficients
//
// Exit status: 0 when the program is clean (notes do not count), 1 when
// any warning- or error-severity finding is reported, 2 on usage or
// internal errors.
//
// The default text mode renders through xpowerd.LintReport, the same
// entry point the xpowerd daemon serves, so `xlint -remote <addr>`
// output is byte-identical to a local run (-remote supports the default
// text mode only).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xtenergy/internal/core"
	"xtenergy/internal/procgen"
	"xtenergy/internal/workloads"
	"xtenergy/internal/xlint"
	"xtenergy/internal/xpowerd"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xlint:", err)
	}
	os.Exit(code)
}

func run() (int, error) {
	list := flag.Bool("list", false, "list built-in workloads")
	name := flag.String("w", "", "analyze the named built-in workload")
	asJSON := flag.Bool("json", false, "emit findings (and bounds) as JSON")
	energy := flag.Bool("energy-bounds", false, "compute static per-invocation energy bounds")
	wcec := flag.Bool("wcec", false, "compute concrete WCEC/BCEC with inferred loop trip counts")
	modelPath := flag.String("model", "", "fitted macro-model JSON for -energy-bounds (default: unit coefficients)")
	notes := flag.Bool("notes", false, "also print note-severity findings")
	disable := flag.String("disable", "", "comma-separated finding codes to suppress")
	remote := flag.String("remote", "", "send the request to a running xpowerd at this address (host:port or unix:<path>; default text mode only)")
	noCache := flag.Bool("no-cache", false, "bypass the content-addressed artifact cache (default text mode; the json/energy/wcec modes never cache)")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			ext := "base"
			if w.Ext != nil {
				ext = "tie:" + w.Ext.Name
			}
			fmt.Printf("%-24s %s\n", w.Name, ext)
		}
		return 0, nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var disabled []string
	if *disable != "" {
		disabled = strings.Split(*disable, ",")
	}

	var wlName, source, sourceName string
	switch {
	case *name != "":
		wlName = *name
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return 2, err
		}
		source, sourceName = string(src), flag.Arg(0)
	default:
		flag.Usage()
		return 2, fmt.Errorf("need -list, -w <name>, or an assembly file")
	}

	if *remote != "" {
		if *asJSON || *energy || *wcec {
			return 2, fmt.Errorf("-remote supports the default text mode only")
		}
		client, err := xpowerd.Dial(*remote, 5*time.Second)
		if err != nil {
			return 2, err
		}
		defer client.Close()
		resp, err := client.Do(ctx, &xpowerd.Request{
			Op: xpowerd.OpLint, Workload: wlName, Source: source, SourceName: sourceName,
			Notes: *notes, Disable: disabled, NoCache: *noCache,
		})
		if err != nil {
			return 2, err
		}
		fmt.Print(resp.Output)
		return resp.Status, nil
	}

	// The plain text mode renders through the daemon-shared entry
	// point; the json/energy/wcec modes keep their richer local flow.
	if !*asJSON && !*energy && !*wcec {
		text, status, err := xpowerd.LintReport(ctx, xpowerd.LintParams{
			Workload: wlName, Source: source, SourceName: sourceName, Notes: *notes,
			Disable: disabled, NoCache: *noCache,
		})
		if err != nil {
			return 2, err
		}
		fmt.Print(text)
		return status, nil
	}

	var w core.Workload
	if wlName != "" {
		var found bool
		w, found = workloads.ByName(wlName)
		if !found {
			return 2, fmt.Errorf("unknown workload %q (try -list)", wlName)
		}
	} else {
		w = core.Workload{Name: sourceName, Source: source}
	}

	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		return 2, err
	}

	var opts []xlint.Option
	if len(disabled) > 0 {
		if err := xlint.ValidateCodes(disabled); err != nil {
			return 2, err
		}
		opts = append(opts, xlint.Disable(disabled...))
	}
	rep := xlint.Analyze(prog, proc, opts...)

	minSev := xlint.SevWarn
	if *notes {
		minSev = xlint.SevNote
	}
	shown := rep.Filter(minSev)

	status := 0
	if rep.Count(xlint.SevWarn) > 0 {
		status = 1
	}

	if *wcec {
		return status, reportWCEC(rep, proc, *modelPath, *asJSON, shown)
	}
	if *energy {
		return status, reportEnergy(rep, proc, *modelPath, *asJSON, shown)
	}
	return status, writeJSON(map[string]any{
		"program":  prog.Name,
		"findings": jsonFindings(shown),
		"clean":    status == 0,
	})
}

// loadModel returns the fitted model at path, or the unit model (every
// coefficient 1.0 pJ) that prices bounds in "weighted events" when no
// fit is supplied.
func loadModel(path string) (*core.MacroModel, string, error) {
	if path == "" {
		m := &core.MacroModel{}
		for i := range m.Coef {
			m.Coef[i] = 1
		}
		return m, "unit", nil
	}
	m, err := core.LoadModel(path)
	if err != nil {
		return nil, "", err
	}
	return m, path, nil
}

func reportEnergy(rep *xlint.Report, proc *procgen.Processor, modelPath string, asJSON bool, shown []xlint.Finding) error {
	model, origin, err := loadModel(modelPath)
	if err != nil {
		return err
	}
	bounds, err := xlint.ComputeBounds(rep.CFG, proc)
	if err != nil {
		return err
	}
	path, pathErr := bounds.PathBounds(model)
	blocks := bounds.BlockEnergy(model)

	if asJSON {
		out := map[string]any{
			"program":  rep.Prog.Name,
			"model":    origin,
			"findings": jsonFindings(shown),
		}
		var bs []map[string]any
		for i, b := range rep.CFG.Blocks {
			bs = append(bs, map[string]any{
				"block": i, "start_pc": b.Start, "end_pc": b.End,
				"reachable": b.Reachable,
				"lo_pj":     blocks[i].Lo, "hi_pj": blocks[i].Hi,
			})
		}
		out["blocks"] = bs
		if pathErr == nil {
			var loops []map[string]any
			for _, l := range path.Loops {
				loops = append(loops, map[string]any{
					"from_pc": l.FromPC, "header_pc": l.HeaderPC,
					"per_iter_lo_pj": l.PerIter.Lo, "per_iter_hi_pj": l.PerIter.Hi,
				})
			}
			out["acyclic_lo_pj"] = path.Acyclic.Lo
			out["acyclic_hi_pj"] = path.Acyclic.Hi
			out["loops"] = loops
		} else {
			out["path_error"] = pathErr.Error()
		}
		return writeJSON(out)
	}

	fmt.Printf("%s: static energy bounds (model: %s)\n", rep.Prog.Name, origin)
	for i, b := range rep.CFG.Blocks {
		mark := ""
		if !b.Reachable {
			mark = "  (unreachable)"
		}
		fmt.Printf("  block %2d  pc [%4d,%4d)  %12.2f .. %-12.2f pJ/exec%s\n",
			i, b.Start, b.End, blocks[i].Lo, blocks[i].Hi, mark)
	}
	if pathErr != nil {
		fmt.Printf("  per-invocation bound: %v\n", pathErr)
		return nil
	}
	fmt.Printf("  per-invocation: %.2f .. %.2f pJ on acyclic paths\n",
		path.Acyclic.Lo, path.Acyclic.Hi)
	for _, l := range path.Loops {
		fmt.Printf("    + n(pc %d -> pc %d) * [%.2f .. %.2f] pJ per iteration\n",
			l.FromPC, l.HeaderPC, l.PerIter.Lo, l.PerIter.Hi)
	}
	return nil
}

func reportWCEC(rep *xlint.Report, proc *procgen.Processor, modelPath string, asJSON bool, shown []xlint.Finding) error {
	model, origin, err := loadModel(modelPath)
	if err != nil {
		return err
	}
	w, err := xlint.ComputeWCEC(rep.CFG, rep.Abs, proc, model)
	if err != nil {
		return err
	}

	if asJSON {
		var terms []map[string]any
		for _, t := range w.Terms {
			terms = append(terms, map[string]any{
				"from_pc": t.FromPC, "header_pc": t.HeaderPC,
				"per_iter_lo_pj": finiteOrNull(t.PerIter.Lo), "per_iter_hi_pj": finiteOrNull(t.PerIter.Hi),
				"trips_lo": finiteOrNull(t.TripLo), "trips_hi": finiteOrNull(t.TripHi),
				"source": t.Source,
			})
		}
		return writeJSON(map[string]any{
			"program":       rep.Prog.Name,
			"model":         origin,
			"findings":      jsonFindings(shown),
			"acyclic_lo_pj": w.Acyclic.Lo,
			"acyclic_hi_pj": w.Acyclic.Hi,
			"loops":         terms,
			"bcec_pj":       finiteOrNull(w.BCEC),
			"wcec_pj":       finiteOrNull(w.WCEC),
			"bounded":       w.Bounded,
		})
	}

	fmt.Printf("%s: worst-case energy (model: %s)\n", rep.Prog.Name, origin)
	fmt.Printf("  acyclic: %.2f .. %.2f pJ\n", w.Acyclic.Lo, w.Acyclic.Hi)
	for _, t := range w.Terms {
		fmt.Printf("    loop pc %d -> pc %d: trips [%g, %g] (%s) x [%.2f .. %.2f] pJ/iter\n",
			t.FromPC, t.HeaderPC, t.TripLo, t.TripHi, t.Source, t.PerIter.Lo, t.PerIter.Hi)
	}
	if w.Bounded {
		fmt.Printf("  BCEC %.2f pJ  <=  energy  <=  WCEC %.2f pJ\n", w.BCEC, w.WCEC)
	} else {
		fmt.Printf("  unbounded: BCEC %g pJ, WCEC %g pJ\n", w.BCEC, w.WCEC)
	}
	return nil
}

// finiteOrNull keeps unbounded quantities JSON-encodable: trip counts
// and energy bounds are +Inf for loops the interpreter cannot bound,
// and encoding/json rejects non-finite floats. JSON null means
// "unbounded"; the "bounded" field says so explicitly.
func finiteOrNull(v float64) any {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return v
}

func jsonFindings(fs []xlint.Finding) []map[string]any {
	out := []map[string]any{}
	for _, f := range fs {
		out = append(out, map[string]any{
			"code": f.Code, "severity": f.Sev.String(),
			"pc": f.PC, "line": f.Line, "reg": f.Reg, "msg": f.Msg,
		})
	}
	return out
}

func writeJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
