// Command xlint statically analyzes XT32+TIE programs: control-flow and
// dataflow diagnostics (uninitialized reads, dead writes, unreachable
// code, guaranteed interlocks, operand validity) and simulation-free
// energy bounds from a fitted macro-model.
//
// Usage:
//
//	xlint -list                     list built-in workloads
//	xlint -w <name>                 analyze a built-in workload
//	xlint <file.s>                  assemble and analyze an assembly file (base ISA)
//	xlint -energy-bounds -w <name>  static per-invocation energy bounds
//	xlint -model fit.json ...       price bounds with a fitted model instead of unit coefficients
//
// Exit status: 0 when the program is clean (notes do not count), 1 when
// any warning- or error-severity finding is reported, 2 on usage or
// internal errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"xtenergy/internal/core"
	"xtenergy/internal/procgen"
	"xtenergy/internal/workloads"
	"xtenergy/internal/xlint"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xlint:", err)
	}
	os.Exit(code)
}

func run() (int, error) {
	list := flag.Bool("list", false, "list built-in workloads")
	name := flag.String("w", "", "analyze the named built-in workload")
	asJSON := flag.Bool("json", false, "emit findings (and bounds) as JSON")
	energy := flag.Bool("energy-bounds", false, "compute static per-invocation energy bounds")
	modelPath := flag.String("model", "", "fitted macro-model JSON for -energy-bounds (default: unit coefficients)")
	notes := flag.Bool("notes", false, "also print note-severity findings")
	disable := flag.String("disable", "", "comma-separated finding codes to suppress")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			ext := "base"
			if w.Ext != nil {
				ext = "tie:" + w.Ext.Name
			}
			fmt.Printf("%-24s %s\n", w.Name, ext)
		}
		return 0, nil
	}

	var w core.Workload
	switch {
	case *name != "":
		found := false
		w, found = workloads.ByName(*name)
		if !found {
			return 2, fmt.Errorf("unknown workload %q (try -list)", *name)
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return 2, err
		}
		w = core.Workload{Name: flag.Arg(0), Source: string(src)}
	default:
		flag.Usage()
		return 2, fmt.Errorf("need -list, -w <name>, or an assembly file")
	}

	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		return 2, err
	}

	var opts []xlint.Option
	if *disable != "" {
		opts = append(opts, xlint.Disable(strings.Split(*disable, ",")...))
	}
	rep := xlint.Analyze(prog, proc, opts...)

	minSev := xlint.SevWarn
	if *notes {
		minSev = xlint.SevNote
	}
	shown := rep.Filter(minSev)

	status := 0
	if rep.Count(xlint.SevWarn) > 0 {
		status = 1
	}

	if *energy {
		return status, reportEnergy(rep, proc, *modelPath, *asJSON, shown)
	}

	if *asJSON {
		return status, writeJSON(map[string]any{
			"program":  prog.Name,
			"findings": jsonFindings(shown),
			"clean":    status == 0,
		})
	}
	for _, f := range shown {
		fmt.Printf("%s:%s\n", prog.Name, f)
	}
	if status == 0 {
		fmt.Printf("%s: clean (%d instructions, %d blocks)\n",
			prog.Name, len(prog.Code), len(rep.CFG.Blocks))
	}
	return status, nil
}

// loadModel returns the fitted model at path, or the unit model (every
// coefficient 1.0 pJ) that prices bounds in "weighted events" when no
// fit is supplied.
func loadModel(path string) (*core.MacroModel, string, error) {
	if path == "" {
		m := &core.MacroModel{}
		for i := range m.Coef {
			m.Coef[i] = 1
		}
		return m, "unit", nil
	}
	m, err := core.LoadModel(path)
	if err != nil {
		return nil, "", err
	}
	return m, path, nil
}

func reportEnergy(rep *xlint.Report, proc *procgen.Processor, modelPath string, asJSON bool, shown []xlint.Finding) error {
	model, origin, err := loadModel(modelPath)
	if err != nil {
		return err
	}
	bounds, err := xlint.ComputeBounds(rep.CFG, proc)
	if err != nil {
		return err
	}
	path, pathErr := bounds.PathBounds(model)
	blocks := bounds.BlockEnergy(model)

	if asJSON {
		out := map[string]any{
			"program":  rep.Prog.Name,
			"model":    origin,
			"findings": jsonFindings(shown),
		}
		var bs []map[string]any
		for i, b := range rep.CFG.Blocks {
			bs = append(bs, map[string]any{
				"block": i, "start_pc": b.Start, "end_pc": b.End,
				"reachable": b.Reachable,
				"lo_pj":     blocks[i].Lo, "hi_pj": blocks[i].Hi,
			})
		}
		out["blocks"] = bs
		if pathErr == nil {
			var loops []map[string]any
			for _, l := range path.Loops {
				loops = append(loops, map[string]any{
					"from_pc": l.FromPC, "header_pc": l.HeaderPC,
					"per_iter_lo_pj": l.PerIter.Lo, "per_iter_hi_pj": l.PerIter.Hi,
				})
			}
			out["acyclic_lo_pj"] = path.Acyclic.Lo
			out["acyclic_hi_pj"] = path.Acyclic.Hi
			out["loops"] = loops
		} else {
			out["path_error"] = pathErr.Error()
		}
		return writeJSON(out)
	}

	fmt.Printf("%s: static energy bounds (model: %s)\n", rep.Prog.Name, origin)
	for i, b := range rep.CFG.Blocks {
		mark := ""
		if !b.Reachable {
			mark = "  (unreachable)"
		}
		fmt.Printf("  block %2d  pc [%4d,%4d)  %12.2f .. %-12.2f pJ/exec%s\n",
			i, b.Start, b.End, blocks[i].Lo, blocks[i].Hi, mark)
	}
	if pathErr != nil {
		fmt.Printf("  per-invocation bound: %v\n", pathErr)
		return nil
	}
	fmt.Printf("  per-invocation: %.2f .. %.2f pJ on acyclic paths\n",
		path.Acyclic.Lo, path.Acyclic.Hi)
	for _, l := range path.Loops {
		fmt.Printf("    + n(pc %d -> pc %d) * [%.2f .. %.2f] pJ per iteration\n",
			l.FromPC, l.HeaderPC, l.PerIter.Lo, l.PerIter.Hi)
	}
	return nil
}

func jsonFindings(fs []xlint.Finding) []map[string]any {
	out := []map[string]any{}
	for _, f := range fs {
		out = append(out, map[string]any{
			"code": f.Code, "severity": f.Sev.String(),
			"pc": f.PC, "line": f.Line, "reg": f.Reg, "msg": f.Msg,
		})
	}
	return out
}

func writeJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
