// Command xprofile is a software energy profiler driven by the
// characterized macro-model: it attributes a workload's estimated energy
// to labeled code regions and to individual instructions. Attribution is
// exact — the per-instruction energies sum to the macro-model's
// whole-program estimate.
//
// Usage:
//
//	xprofile [-fast] [-model file] [-top n] -w <workload>
//	xprofile -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"xtenergy/internal/core"
	"xtenergy/internal/experiments"
	"xtenergy/internal/iss"
	"xtenergy/internal/profiler"
	"xtenergy/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xprofile:", err)
		os.Exit(1)
	}
}

func run() error {
	fast := flag.Bool("fast", false, "use the reduced-resolution reference model for characterization")
	modelPath := flag.String("model", "", "load a characterized model instead of re-characterizing")
	name := flag.String("w", "", "workload to profile")
	top := flag.Int("top", 10, "number of hottest instructions to print")
	list := flag.Bool("list", false, "list available workloads")
	flag.Parse()

	if *list {
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
		return nil
	}
	w, ok := workloads.ByName(*name)
	if !ok {
		return fmt.Errorf("unknown workload %q (try -list)", *name)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	suite := experiments.Default()
	if *fast {
		suite = experiments.Fast()
	}
	suite.Ctx = ctx
	var model *core.MacroModel
	if *modelPath != "" {
		m, err := core.LoadModel(*modelPath)
		if err != nil {
			return err
		}
		model = m
	} else {
		fmt.Println("characterizing the processor (one-time cost per configuration)...")
		cr, err := suite.Characterization()
		if err != nil {
			return err
		}
		model = cr.Model
	}

	proc, prog, err := w.Build(suite.Config)
	if err != nil {
		return err
	}
	res, err := iss.New(proc).RunContext(ctx, prog, iss.Options{CollectTrace: true})
	if err != nil {
		return err
	}
	rep, err := profiler.Profile(model, proc, prog, res.Trace)
	if err != nil {
		return err
	}

	fmt.Printf("\nworkload %s: %d retired instructions, %d cycles\n\n",
		w.Name, res.Stats.Retired, rep.Cycles)
	fmt.Print(rep.FormatRegions())
	fmt.Println()
	fmt.Print(rep.FormatHotLines(*top))
	return nil
}
