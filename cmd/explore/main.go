// Command explore runs a design-space exploration with the energy
// macro-model: the Reed-Solomon kernel's four custom-instruction choices
// crossed with two base-core configurations (the default T1040-like core
// and a small-cache variant), eight candidates priced in milliseconds,
// with the Pareto frontier marked.
//
// This is the workflow the paper motivates: without the macro-model,
// every candidate would need synthesis plus hours of RTL power
// estimation.
//
// Usage:
//
//	explore [-fast] [-model file]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"xtenergy/internal/core"
	"xtenergy/internal/engine"
	"xtenergy/internal/experiments"
	"xtenergy/internal/explore"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

func run() error {
	fast := flag.Bool("fast", false, "use the reduced-resolution reference model for characterization")
	modelPath := flag.String("model", "", "load a characterized model instead of re-characterizing")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tech := rtlpower.DefaultTechnology()
	if *fast {
		tech = rtlpower.FastTechnology()
	}

	// The macro-model is per base configuration (see the config
	// sensitivity experiment), so each configuration in the sweep gets
	// its own characterization — still a one-time cost per family.
	configs := []procgen.Config{procgen.Default(), experiments.AltConfig()}
	models := make(map[string]*core.MacroModel, len(configs))
	if *modelPath != "" {
		m, err := core.LoadModel(*modelPath)
		if err != nil {
			return err
		}
		for _, cfg := range configs {
			models[cfg.Name] = m
		}
		fmt.Println("using the supplied model for every configuration (cross-config error applies)")
	} else {
		for _, cfg := range configs {
			fmt.Printf("characterizing %s...\n", cfg.Name)
			// Resolved through the content-addressed engine: a sweep
			// re-run (or any other tool characterizing the same family)
			// recalls the fitted model instead of re-simulating the
			// 25-program suite.
			cr, _, err := engine.Default().Characterize(ctx, engine.CharacterizeSpec{
				Config: cfg, Tech: tech, Workloads: workloads.CharacterizationSuite(),
			})
			if err != nil {
				return err
			}
			models[cfg.Name] = cr.Model
		}
	}

	var points []explore.Point
	for _, cfg := range configs {
		var cands []explore.Candidate
		for _, w := range workloads.ReedSolomonConfigurations() {
			cands = append(cands, explore.Candidate{Name: w.Name, Config: cfg, Workload: w})
		}
		ps, err := explore.Evaluate(models[cfg.Name], cands)
		if err != nil {
			return err
		}
		points = append(points, ps...)
	}
	// Re-mark Pareto across the combined space.
	points = explore.Remark(points)
	fmt.Println()
	fmt.Print(explore.Format(points))

	front := explore.ParetoFrontier(points)
	fmt.Printf("\nPareto frontier (%d of %d candidates):\n", len(front), len(points))
	for _, p := range front {
		fmt.Printf("  %-12s on %-20s %8d cycles, %6.2f uJ\n",
			p.Name, p.Config.Name, p.Cycles, p.EnergyUJ())
	}
	if best, err := explore.MinEnergy(points); err == nil {
		fmt.Printf("\nlowest energy: %s on %s (%.2f uJ)\n", best.Name, best.Config.Name, best.EnergyUJ())
	}
	if best, err := explore.MinEDP(points); err == nil {
		fmt.Printf("lowest EDP:    %s on %s\n", best.Name, best.Config.Name)
	}
	return nil
}
