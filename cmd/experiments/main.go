// Command experiments regenerates every table and figure of the paper's
// evaluation section: Table I (energy coefficients), Fig. 3 (fitting
// errors), Table II (application estimates vs. reference), Fig. 4
// (Reed-Solomon relative accuracy), the speedup comparison, and the
// ablation studies.
//
// Usage:
//
//	experiments [-fast] [-out file] [-j n] [table1|fig3|table2|fig4|speedup|ablation|config ...]
//	experiments bench [-json BENCH_iss.json] [-benchtime 2s] [-check]
//
// With no arguments, all experiments run in order. The bench subcommand
// runs the ISS-path micro-benchmarks in process and updates the
// BENCH_iss.json perf trajectory (see cmd/experiments/bench.go).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"xtenergy/internal/experiments"
)

func main() {
	fast := flag.Bool("fast", false, "use the reduced-resolution reference model")
	out := flag.String("out", "", "also write the report to this file")
	jobs := flag.Int("j", 0, "concurrent workload measurements (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	suite := experiments.Default()
	if *fast {
		suite = experiments.Fast()
	}
	suite.Ctx = ctx
	suite.Parallelism = *jobs

	which := flag.Args()
	if len(which) > 0 && which[0] == "bench" {
		if err := runBench(which[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if len(which) == 0 {
		which = []string{"table1", "fig3", "table2", "fig4", "speedup", "ablation", "config", "validation", "loocv", "stability", "sabotage"}
	}

	var report strings.Builder
	w := io.MultiWriter(os.Stdout, &report)

	for _, name := range which {
		text, err := runOne(suite, name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintln(w, text)
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "report written to", *out)
	}
}

func runOne(suite *experiments.Suite, name string) (string, error) {
	switch name {
	case "table1":
		rows, err := suite.Table1()
		if err != nil {
			return "", err
		}
		return experiments.FormatTable1(rows), nil
	case "fig3":
		f, err := suite.Fig3()
		if err != nil {
			return "", err
		}
		return experiments.FormatFig3(f), nil
	case "table2":
		t, err := suite.Table2()
		if err != nil {
			return "", err
		}
		return experiments.FormatTable2(t), nil
	case "fig4":
		p, err := suite.Fig4()
		if err != nil {
			return "", err
		}
		return experiments.FormatFig4(p), nil
	case "speedup":
		r, err := suite.Speedup()
		if err != nil {
			return "", err
		}
		return experiments.FormatSpeedup(r), nil
	case "ablation":
		a, err := suite.Ablations()
		if err != nil {
			return "", err
		}
		text := experiments.FormatAblations(a)
		vars, obs, solvable, err := suite.PerOpcodeAblation()
		if err != nil {
			return "", err
		}
		text += fmt.Sprintf("per-opcode (unclustered) variant: %d variables vs %d observations -> solvable: %v\n",
			vars, obs, solvable)
		text += "(this is why the paper clusters the base ISA into six classes)\n"
		return text, nil
	case "config":
		c, err := suite.ConfigSensitivity()
		if err != nil {
			return "", err
		}
		return experiments.FormatConfigSensitivity(c), nil
	case "validation":
		v, err := suite.Validation()
		if err != nil {
			return "", err
		}
		return experiments.FormatValidation(v), nil
	case "loocv":
		c, err := suite.CrossValidation()
		if err != nil {
			return "", err
		}
		return experiments.FormatCrossValidation(c), nil
	case "stability":
		r, err := suite.Stability(5)
		if err != nil {
			return "", err
		}
		return experiments.FormatStability(r), nil
	case "sabotage":
		r, err := suite.Sabotage()
		if err != nil {
			return "", err
		}
		return experiments.FormatSabotage(r), nil
	}
	return "", fmt.Errorf("unknown experiment %q (want table1, fig3, table2, fig4, speedup, ablation, config, validation, loocv, stability, or sabotage)", name)
}
