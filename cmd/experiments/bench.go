package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"xtenergy/internal/engine"
	"xtenergy/internal/iss"
	"xtenergy/internal/memo"
	"xtenergy/internal/plan"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
)

// The bench subcommand is the perf-trajectory recorder: it runs the
// ISS-path micro-benchmarks in process (testing.Benchmark, same bodies
// as the go-test benchmarks in bench_test.go) and maintains a JSON file
// with two snapshots per benchmark — "baseline", frozen when first
// recorded, and "current", overwritten on every run — so a PR can show
// its ns/op delta against the numbers it started from.

// benchEntry is one benchmark measurement.
type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	InstrsPerOp float64 `json:"instrs_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"n,omitempty"`
}

// benchFile is the on-disk BENCH_iss.json layout.
type benchFile struct {
	Note     string                `json:"note"`
	GOOS     string                `json:"goos"`
	GOARCH   string                `json:"goarch"`
	Baseline map[string]benchEntry `json:"baseline"`
	Current  map[string]benchEntry `json:"current"`
}

// benchLanes lists the recorded benchmarks in print order. The
// per-tier simulate_nets_<kernel> lanes are appended at runtime, since
// which tiers run depends on the host.
var benchLanes = []string{"iss_steps", "plan_build", "simulate_nets", "reference_streamed", "cached_path"}

// checkTolerance is how much slower than its frozen baseline a lane's
// ns/op may drift before `bench -check` fails the run. Wide enough for
// scheduler noise on the estimator lanes (which run with a longer
// benchtime for stability), tight enough to catch a real regression.
const checkTolerance = 1.15

func runBench(argv []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	jsonPath := fs.String("json", "BENCH_iss.json", "benchmark trajectory file to update")
	benchtime := fs.String("benchtime", "", "per-benchmark budget in testing -benchtime syntax (e.g. 2s, 1x)")
	check := fs.Bool("check", false, "exit nonzero when any lane's ns/op regresses more than 15% vs its frozen baseline")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	testing.Init()
	setBenchtime := func(bt string) error {
		if *benchtime != "" {
			bt = *benchtime // explicit budget overrides per-lane defaults
		}
		return flag.Set("test.benchtime", bt)
	}

	w := workloads.ReedSolomonBase()
	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		return err
	}

	current := map[string]benchEntry{}

	sim := iss.New(proc)
	if err := setBenchtime("1s"); err != nil {
		return err
	}
	current["iss_steps"] = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(prog, iss.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.Retired), "instrs/op")
		}
	}))

	current["plan_build"] = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := plan.Build(prog.Code, prog.CodeBase, prog.Uncached, proc.TIE)
			if len(p.Recs) != len(prog.Code) {
				b.Fatal("short plan")
			}
		}
	}))

	est, err := rtlpower.New(proc, rtlpower.FastTechnology())
	if err != nil {
		return err
	}

	// The estimator lanes get a longer default budget: the historical
	// reference_streamed baseline froze at n=9, too few iterations to
	// keep run-to-run noise inside the -check tolerance.
	if err := setBenchtime("3s"); err != nil {
		return err
	}

	// simulate_nets isolates the net-simulation kernel from the ISS:
	// pure estimation over a prerecorded trace (the in-process twin of
	// BenchmarkRTLPowerEstimate).
	res, err := sim.Run(prog, iss.Options{CollectTrace: true})
	if err != nil {
		return err
	}
	current["simulate_nets"] = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := est.EstimateTrace(res.Trace); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Per-tier lanes pin each supported walker kernel in turn, so a
	// regression in one tier's assembly shows up even when it is not the
	// host's default. Shorter budget: these guard relative drift per
	// tier, while the simulate_nets lane above owns the headline number.
	lanes := append([]string(nil), benchLanes...)
	defaultKernel := rtlpower.SelectedKernel()
	for _, k := range rtlpower.SupportedKernels() {
		if err := rtlpower.SetKernel(k.String()); err != nil {
			return err
		}
		if err := setBenchtime("1s"); err != nil {
			return err
		}
		lane := "simulate_nets_" + k.String()
		lanes = append(lanes, lane)
		current[lane] = toEntry(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := est.EstimateTrace(res.Trace); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	if err := rtlpower.SetKernel(defaultKernel.String()); err != nil {
		return err
	}
	if err := setBenchtime("3s"); err != nil {
		return err
	}

	current["reference_streamed"] = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := est.Stream()
			if _, err := rtlpower.RunStreamed(context.Background(), iss.New(proc), prog, iss.Options{}, st); err != nil {
				b.Fatal(err)
			}
			if _, err := st.Finish(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// cached_path measures a warm artifact-store hit end to end: digest
	// the canonical request, recall the artifact from the in-memory
	// tier, decode, and render the report — microseconds against the
	// cold reference_streamed lane above, which is what a miss costs.
	eng, err := engine.New(engine.Options{})
	if err != nil {
		return err
	}
	spec := engine.EstimateSpec{Workload: w, Config: procgen.Default(), Tech: rtlpower.FastTechnology()}
	if _, _, err := eng.Estimate(context.Background(), spec); err != nil { // prime the store
		return err
	}
	if err := setBenchtime("1s"); err != nil {
		return err
	}
	current["cached_path"] = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, out, err := eng.Estimate(context.Background(), spec)
			if err != nil {
				b.Fatal(err)
			}
			if out != memo.OutcomeMemHit {
				b.Fatalf("warm request missed the store: %v", out)
			}
			if a.Render() == "" {
				b.Fatal("empty report")
			}
		}
	}))

	f := benchFile{
		Note:   "ISS-path perf trajectory over the rs_base workload; baseline is frozen at first record, current is overwritten by `experiments bench`",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	if raw, err := os.ReadFile(*jsonPath); err == nil {
		var prev benchFile
		if err := json.Unmarshal(raw, &prev); err != nil {
			return fmt.Errorf("bench: %s exists but is not a trajectory file: %w", *jsonPath, err)
		}
		f.Baseline = prev.Baseline
	}
	if f.Baseline == nil {
		f.Baseline = current
	}
	// Lanes added after the baseline froze get their baseline frozen
	// now, at first record.
	for name, cur := range current {
		if _, ok := f.Baseline[name]; !ok {
			f.Baseline[name] = cur
		}
	}
	f.Current = current

	out, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
		return err
	}

	var regressed []string
	for _, name := range lanes {
		cur := f.Current[name]
		line := fmt.Sprintf("%-20s %14.0f ns/op %8d B/op %6d allocs/op", name, cur.NsPerOp, cur.BytesPerOp, cur.AllocsPerOp)
		if base, ok := f.Baseline[name]; ok && base.NsPerOp > 0 && base != cur {
			line += fmt.Sprintf("   (baseline %14.0f ns/op, %+.1f%%)", base.NsPerOp, 100*(cur.NsPerOp-base.NsPerOp)/base.NsPerOp)
			if cur.NsPerOp > base.NsPerOp*checkTolerance {
				regressed = append(regressed, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%)",
					name, cur.NsPerOp, base.NsPerOp, 100*(cur.NsPerOp-base.NsPerOp)/base.NsPerOp))
			}
		}
		fmt.Println(line)
	}
	fmt.Fprintln(os.Stderr, "trajectory written to", *jsonPath)
	if *check && len(regressed) > 0 {
		return fmt.Errorf("bench -check: ns/op regressed more than %.0f%% vs frozen baseline:\n  %s",
			100*(checkTolerance-1), strings.Join(regressed, "\n  "))
	}
	return nil
}

func toEntry(r testing.BenchmarkResult) benchEntry {
	return benchEntry{
		NsPerOp:     float64(r.NsPerOp()),
		InstrsPerOp: r.Extra["instrs/op"],
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		N:           r.N,
	}
}
