// Command estimate runs the fast macro-model energy-estimation path
// (Fig. 2 of the paper, steps 9-11) for one application: instruction-set
// simulation, dynamic resource-usage analysis, and the macro-model dot
// product. With -ref it also runs the slow RTL-level reference estimator
// and reports the error — one row of the paper's Table II.
//
// Usage:
//
//	estimate [-fast] [-ref] [-timeout d] [-retries n] [-partial] -w <workload>
//	estimate -list
//
// Exit status: 0 on a clean run, 1 when -partial characterization
// dropped failed workloads (the failure report goes to stderr; stdout
// stays machine-parseable), 2 on a hard failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xtenergy/internal/core"
	"xtenergy/internal/experiments"
	"xtenergy/internal/workloads"
)

func main() {
	degraded, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "estimate:", err)
		os.Exit(2)
	}
	if degraded {
		os.Exit(1)
	}
}

func candidates() []core.Workload {
	var ws []core.Workload
	ws = append(ws, workloads.Applications()...)
	ws = append(ws, workloads.ValidationApplications()...)
	ws = append(ws, workloads.ReedSolomonConfigurations()...)
	return ws
}

func run() (degraded bool, err error) {
	fast := flag.Bool("fast", false, "use the reduced-resolution reference model")
	withRef := flag.Bool("ref", false, "also run the RTL-level reference estimator")
	name := flag.String("w", "", "workload to estimate")
	list := flag.Bool("list", false, "list estimable workloads")
	modelPath := flag.String("model", "", "load a characterized model from this JSON file instead of re-characterizing")
	breakdown := flag.Bool("breakdown", false, "print the estimate's per-term decomposition")
	timeout := flag.Duration("timeout", 0, "per-workload characterization deadline (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts for transiently-failing characterization workloads")
	backoff := flag.Duration("backoff", 0, "base delay between retry attempts, growing exponentially (0 = 100ms default, negative = retry immediately)")
	partial := flag.Bool("partial", false, "characterize on the surviving workloads when some fail (degraded runs exit 1)")
	flag.Parse()

	if *list {
		for _, w := range candidates() {
			fmt.Println(w.Name)
		}
		return false, nil
	}
	var w core.Workload
	found := false
	for _, cand := range candidates() {
		if cand.Name == *name {
			w, found = cand, true
			break
		}
	}
	if !found {
		return false, fmt.Errorf("unknown workload %q (try -list)", *name)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	suite := experiments.Default()
	if *fast {
		suite = experiments.Fast()
	}
	suite.Ctx = ctx
	suite.Timeout = *timeout
	suite.Retries = *retries
	suite.Backoff = *backoff
	suite.Partial = *partial
	var model *core.MacroModel
	if *modelPath != "" {
		m, err := core.LoadModel(*modelPath)
		if err != nil {
			return false, err
		}
		model = m
	} else {
		fmt.Println("characterizing the processor (one-time cost per configuration)...")
		cr, err := suite.Characterization()
		if err != nil {
			return false, err
		}
		if cr.Degraded() {
			degraded = true
			fmt.Fprint(os.Stderr, core.FormatFailures(cr.Failures))
		}
		model = cr.Model
	}

	start := time.Now()
	est, err := model.EstimateWorkload(suite.Config, w)
	if err != nil {
		return degraded, err
	}
	estTime := time.Since(start)
	fmt.Printf("macro-model estimate: %.3f uJ over %d cycles (%.1f mW at %.0f MHz) in %v\n",
		est.EnergyUJ(), est.Cycles,
		est.EnergyPJ/float64(est.Cycles)*suite.Config.ClockMHz*1e6*1e-9,
		suite.Config.ClockMHz, estTime)

	if *breakdown {
		fmt.Println()
		fmt.Print(core.FormatBreakdown(model.Breakdown(est.Vars)))
	}

	if *withRef {
		start = time.Now()
		ref, err := core.ReferenceEnergy(ctx, suite.Config, suite.Tech, w)
		if err != nil {
			return degraded, err
		}
		refTime := time.Since(start)
		errPct := 100 * (est.EnergyPJ - ref.EnergyPJ) / ref.EnergyPJ
		fmt.Printf("reference (RTL-level): %.3f uJ in %v\n", ref.EnergyUJ(), refTime)
		fmt.Printf("error: %+.1f%%, reference/macro time ratio: %.0fx\n",
			errPct, float64(refTime)/float64(estTime))
	}
	return degraded, nil
}
