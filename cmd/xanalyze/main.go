// Command xanalyze runs the project-invariant analyzer suite
// (internal/analyzers) over this module's packages.
//
// Usage:
//
//	xanalyze [-list] [patterns...]
//
// Patterns default to ./... and are resolved by `go list` in the current
// directory. Exit status: 0 clean, 1 findings reported, 2 usage or load
// error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"xtenergy/internal/analyzers"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	patterns := flag.Args()
	pkgs, err := analyzers.LoadContext(ctx, ".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		pass := &analyzers.Pass{Pkg: pkg}
		for _, a := range analyzers.All() {
			for _, d := range a.Run(pass) {
				fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Msg)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "xanalyze: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
