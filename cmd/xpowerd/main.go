// Command xpowerd is the estimation-as-a-service daemon: it serves
// concurrent estimate/lint/profile/simulate sessions over a
// length-prefixed JSON frame protocol on TCP and/or a unix socket,
// with bounded concurrency, backpressure, and graceful drain.
//
// Usage:
//
//	xpowerd [-listen addr] [-unix path] [-workers n] [-queue n]
//	        [-max-conns n] [-read-timeout d] [-write-timeout d] [-drain d]
//	        [-memo-dir path|off]
//
// SIGINT/SIGTERM starts a graceful drain: the daemon stops accepting,
// lets in-flight sessions finish under the -drain deadline, then
// force-cancels stragglers. A clean drain exits 0; a forced one exits 1.
//
// Clients: `xpower -remote <addr> -w <workload>` and
// `xlint -remote <addr> -w <workload>`, where addr is host:port or
// unix:<path>.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xtenergy/internal/engine"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/xpowerd"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7433", "TCP listen address (empty disables TCP)")
	unix := flag.String("unix", "", "unix-socket path (empty disables the socket)")
	workers := flag.Int("workers", 0, "concurrent pipeline runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission-queue depth beyond the workers (0 = 2x workers)")
	maxConns := flag.Int("max-conns", 0, "open-session limit (0 = 64)")
	readTimeout := flag.Duration("read-timeout", 0, "per-frame read deadline (0 = 30s)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-response write deadline (0 = 30s)")
	drain := flag.Duration("drain", 0, "graceful-drain deadline on SIGTERM (0 = 15s)")
	memoDir := flag.String("memo-dir", "", "artifact-cache directory (empty = $XTENERGY_MEMO_DIR or the user cache dir; \"off\" = memory-only)")
	quiet := flag.Bool("quiet", false, "suppress operational logging")
	flag.Parse()

	// The daemon honors the XTENERGY_KERNEL tier override; refusing to
	// start beats silently serving estimates on a different tier than
	// the operator pinned.
	if err := rtlpower.EnvKernelError(); err != nil {
		fmt.Fprintln(os.Stderr, "xpowerd:", err)
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	if *memoDir != "" {
		dir := *memoDir
		if dir == "off" {
			dir = "" // memory-only store
		}
		eng, err := engine.New(engine.Options{Dir: dir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xpowerd:", err)
			os.Exit(2)
		}
		xpowerd.SetEngine(eng)
	}
	srv := xpowerd.New(xpowerd.Config{
		TCPAddr:      *listen,
		UnixPath:     *unix,
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxConns:     *maxConns,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		DrainTimeout: *drain,
		Logf:         logf,
	})
	if err := srv.Listen(); err != nil {
		fmt.Fprintln(os.Stderr, "xpowerd:", err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancels ctx, which is the daemon's drain trigger;
	// a second signal kills the process the default way (stop releases
	// the handler), so a wedged drain can always be escalated.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	start := time.Now()
	if err := srv.Serve(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "xpowerd:", err)
		os.Exit(1)
	}
	logger.Printf("xpowerd: clean shutdown after %v", time.Since(start).Round(time.Millisecond))
}
