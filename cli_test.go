// End-to-end tests of the command-line tools, run via "go run". They
// are skipped under -short.
package xtenergy_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIXsim(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests are slow")
	}
	out := runCLI(t, "./cmd/xsim", "-list")
	for _, want := range []string{"tp01_alu_mix", "ins_sort", "rs_gffold"} {
		if !strings.Contains(out, want) {
			t.Fatalf("xsim -list missing %q:\n%s", want, out)
		}
	}
	out = runCLI(t, "./cmd/xsim", "-w", "des", "-vars")
	for _, want := range []string{"cycles=", "macro-model variables", "custom-side-effect"} {
		if !strings.Contains(out, want) {
			t.Fatalf("xsim -w des missing %q:\n%s", want, out)
		}
	}
	out = runCLI(t, "./cmd/xsim", "-disasm", "-w", "gcd")
	if !strings.Contains(out, "custom.") {
		t.Fatalf("disassembly missing custom instruction:\n%s", out)
	}
}

func TestCLICharacterizeAndEstimate(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests are slow")
	}
	model := filepath.Join(t.TempDir(), "model.json")
	out := runCLI(t, "./cmd/characterize", "-fast", "-save", model)
	for _, want := range []string{"TABLE I", "FIG. 3", "model written to"} {
		if !strings.Contains(out, want) {
			t.Fatalf("characterize missing %q:\n%s", want, out)
		}
	}
	out = runCLI(t, "./cmd/estimate", "-fast", "-model", model, "-w", "gcd")
	if !strings.Contains(out, "macro-model estimate:") {
		t.Fatalf("estimate output:\n%s", out)
	}
	if strings.Contains(out, "characterizing") {
		t.Fatal("estimate re-characterized despite -model")
	}
}

func TestCLIXpower(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests are slow")
	}
	out := runCLI(t, "./cmd/xpower", "-fast", "-w", "accumulate", "-profile", "400")
	for _, want := range []string{"per-block energy breakdown", "clock", "custom hardware:", "power profile"} {
		if !strings.Contains(out, want) {
			t.Fatalf("xpower missing %q:\n%s", want, out)
		}
	}
}

func TestCLIExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests are slow")
	}
	report := filepath.Join(t.TempDir(), "report.txt")
	out := runCLI(t, "./cmd/experiments", "-fast", "-out", report, "fig4")
	if !strings.Contains(out, "profiles track: true") {
		t.Fatalf("experiments fig4 output:\n%s", out)
	}
}

func TestCLIXprofileAndExplore(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests are slow")
	}
	out := runCLI(t, "./cmd/xprofile", "-fast", "-w", "gcd", "-top", "3")
	for _, want := range []string{"energy by code region", "g_inner", "hottest 3 instructions"} {
		if !strings.Contains(out, want) {
			t.Fatalf("xprofile missing %q:\n%s", want, out)
		}
	}
	out = runCLI(t, "./cmd/explore", "-fast")
	for _, want := range []string{"DESIGN SPACE", "Pareto frontier", "lowest energy:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explore missing %q:\n%s", want, out)
		}
	}
}

func TestCLIXsimJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests are slow")
	}
	out := runCLI(t, "./cmd/xsim", "-json", "-w", "des")
	for _, want := range []string{`"workload": "des"`, `"cycles"`, `"custom-side-effect"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("xsim -json missing %q:\n%s", want, out)
		}
	}
}

func TestCLIXlint(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests are slow")
	}
	out := runCLI(t, "./cmd/xlint", "-w", "rs_gffold")
	if !strings.Contains(out, "clean") {
		t.Fatalf("xlint on a clean workload:\n%s", out)
	}
	out = runCLI(t, "./cmd/xlint", "-energy-bounds", "-w", "gcd")
	for _, want := range []string{"static energy bounds", "pJ/exec", "per-invocation", "per iteration"} {
		if !strings.Contains(out, want) {
			t.Fatalf("xlint -energy-bounds missing %q:\n%s", want, out)
		}
	}
	out = runCLI(t, "./cmd/xlint", "-json", "-w", "rs_base")
	for _, want := range []string{`"clean": true`, `"findings"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("xlint -json missing %q:\n%s", want, out)
		}
	}
	// Findings make the exit status non-zero; go run flattens any failure
	// to 1, so just assert failure plus the diagnostic on stdout.
	cmd := exec.Command("go", "run", "./cmd/xlint", "-w", "tp01_alu_mix")
	cliOut, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("xlint on a stress kernel should exit non-zero:\n%s", cliOut)
	}
	if !strings.Contains(string(cliOut), "dead-write") {
		t.Fatalf("xlint stress-kernel output missing dead-write:\n%s", cliOut)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow")
	}
	out := runCLI(t, "./examples/quickstart")
	for _, want := range []string{"macro-model estimate:", "RTL-level reference:", "error:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("quickstart missing %q:\n%s", want, out)
		}
	}
	out = runCLI(t, "./examples/loopoption")
	if !strings.Contains(out, "zero-overhead loop option:") {
		t.Fatalf("loopoption output:\n%s", out)
	}
}
