// Custom-instruction trade-off study: the use case that motivates the
// paper. A designer considers three implementations of a FIR-filter
// kernel — base ISA only, a single-cycle multiply-accumulate custom
// instruction, and a wider two-tap custom instruction — and wants to
// rank their energy and energy-delay product *before synthesizing any
// of them*. The macro-model provides exactly that: each candidate costs
// one instruction-set simulation.
//
//	go run ./examples/customalu
package main

import (
	"context"
	"fmt"
	"log"

	"xtenergy/internal/core"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/tie"
	"xtenergy/internal/workloads"
	"xtenergy/internal/xlint"
)

const taps = 8
const samples = 96

func firData() string {
	coef := "coef:\n.word 3, -5, 9, 14, 9, -5, 3, 1\n"
	sig := "sig:\n"
	for i := 0; i < samples+taps; i += 8 {
		sig += ".word "
		for j := 0; j < 8; j++ {
			if j > 0 {
				sig += ", "
			}
			sig += fmt.Sprint((i+j)*37%200 - 100)
		}
		sig += "\n"
	}
	return coef + sig
}

// Candidate A: base ISA only (mul + add per tap).
func firBase() core.Workload {
	return core.Workload{Name: "fir-base", Source: `
start:
    movi a2, sig
    movi a4, ` + fmt.Sprint(samples) + `
outer:
    movi a3, coef
    movi a5, ` + fmt.Sprint(taps) + `
    movi a6, 0          ; acc
    mov a7, a2
inner:
    l32i a8, a7, 0
    l32i a9, a3, 0
    mul a10, a8, a9
    add a6, a6, a10
    addi a7, a7, 4
    addi a3, a3, 4
    addi a5, a5, -1
    bnez a5, inner
    s32i a6, a2, 0
    addi a2, a2, 4
    addi a4, a4, -1
    bnez a4, outer
    ret
.data 0x1000
` + firData()}
}

// Candidate B: single-cycle MAC custom instruction with an internal
// accumulator register.
func firMacExt() *tie.Extension {
	return &tie.Extension{
		Name:          "firmac",
		NumCustomRegs: 1,
		Instructions: []*tie.Instruction{
			{
				Name: "fmac.clr", Latency: 1,
				Datapath: []tie.DatapathElem{
					{Component: hwlib.Component{Name: "fm_acc", Cat: hwlib.CustomRegister, Width: 32}},
				},
				Semantics: func(s *tie.State, _ tie.Operands) uint32 { s.Regs[0] = 0; return 0 },
			},
			{
				Name: "fmac", Latency: 1, ReadsGeneral: true,
				Datapath: []tie.DatapathElem{
					{Component: hwlib.Component{Name: "fm_mul", Cat: hwlib.TIEMac, Width: 24}, OnBus: true},
					{Component: hwlib.Component{Name: "fm_acc", Cat: hwlib.CustomRegister, Width: 32}},
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					s.Regs[0] += op.RsVal * op.RtVal
					return 0
				},
			},
			{
				Name: "fmac.rd", Latency: 1, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					{Component: hwlib.Component{Name: "fm_acc", Cat: hwlib.CustomRegister, Width: 32}},
					{Component: hwlib.Component{Name: "fm_mux", Cat: hwlib.LogicRedMux, Width: 32}},
				},
				Semantics: func(s *tie.State, _ tie.Operands) uint32 { return s.Regs[0] },
			},
		},
	}
}

func firMac() core.Workload {
	return core.Workload{Name: "fir-mac", Ext: firMacExt(), Source: `
start:
    movi a2, sig
    movi a4, ` + fmt.Sprint(samples) + `
outer:
    movi a3, coef
    movi a5, ` + fmt.Sprint(taps) + `
    fmac.clr a0, a0, a0
    mov a7, a2
inner:
    l32i a8, a7, 0
    l32i a9, a3, 0
    fmac a0, a8, a9
    addi a7, a7, 4
    addi a3, a3, 4
    addi a5, a5, -1
    bnez a5, inner
    fmac.rd a6, a0, a0
    s32i a6, a2, 0
    addi a2, a2, 4
    addi a4, a4, -1
    bnez a4, outer
    ret
.data 0x1000
` + firData()}
}

// Candidate C: a two-tap instruction — twice the hardware, half the
// inner-loop iterations, two-cycle latency.
func firMac2Ext() *tie.Extension {
	return &tie.Extension{
		Name:          "firmac2",
		NumCustomRegs: 1,
		Instructions: []*tie.Instruction{
			{
				Name: "fmac2.clr", Latency: 1,
				Datapath: []tie.DatapathElem{
					{Component: hwlib.Component{Name: "f2_acc", Cat: hwlib.CustomRegister, Width: 40}},
				},
				Semantics: func(s *tie.State, _ tie.Operands) uint32 { s.Regs[0] = 0; return 0 },
			},
			{
				// Processes signal at rs-pointer-loaded pair vs coef pair:
				// here both pairs arrive packed as 2x16-bit halves.
				Name: "fmac2", Latency: 2, ReadsGeneral: true,
				Datapath: []tie.DatapathElem{
					{Component: hwlib.Component{Name: "f2_mul", Cat: hwlib.TIEMac, Width: 32}, OnBus: true},
					{Component: hwlib.Component{Name: "f2_csa", Cat: hwlib.TIECsa, Width: 40}},
					{Component: hwlib.Component{Name: "f2_acc", Cat: hwlib.CustomRegister, Width: 40}},
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					s0 := int32(int16(op.RsVal))
					s1 := int32(int16(op.RsVal >> 16))
					c0 := int32(int16(op.RtVal))
					c1 := int32(int16(op.RtVal >> 16))
					s.Regs[0] += uint32(s0*c0 + s1*c1)
					return 0
				},
			},
			{
				Name: "fmac2.rd", Latency: 1, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					{Component: hwlib.Component{Name: "f2_acc", Cat: hwlib.CustomRegister, Width: 40}},
					{Component: hwlib.Component{Name: "f2_mux", Cat: hwlib.LogicRedMux, Width: 32}},
				},
				Semantics: func(s *tie.State, _ tie.Operands) uint32 { return s.Regs[0] },
			},
		},
	}
}

func firMac2() core.Workload {
	// The packed variant reads signal and coefficient words as 2x16-bit
	// pairs, halving the inner-loop trip count.
	return core.Workload{Name: "fir-mac2", Ext: firMac2Ext(), Source: `
start:
    movi a2, sig
    movi a4, ` + fmt.Sprint(samples) + `
outer:
    movi a3, coef
    movi a5, ` + fmt.Sprint(taps/2) + `
    fmac2.clr a0, a0, a0
    mov a7, a2
inner:
    l32i a8, a7, 0      ; packed 2x16 signal
    l32i a9, a3, 0      ; packed 2x16 coef
    fmac2 a0, a8, a9
    addi a7, a7, 4
    addi a3, a3, 4
    addi a5, a5, -1
    bnez a5, inner
    fmac2.rd a6, a0, a0
    s32i a6, a2, 0
    addi a2, a2, 4
    addi a4, a4, -1
    bnez a4, outer
    ret
.data 0x1000
` + firData()}
}

func main() {
	cfg := procgen.Default()
	tech := rtlpower.DefaultTechnology()
	tech.Detail = 0.1

	fmt.Println("characterizing the processor family once...")
	cr, err := core.Characterize(context.Background(), cfg, tech, workloads.CharacterizationSuite(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nevaluating three custom-instruction candidates (no synthesis needed):")
	fmt.Printf("%-10s %10s %12s %16s\n", "candidate", "cycles", "energy (uJ)", "EDP (uJ*kcyc)")
	for _, w := range []core.Workload{firBase(), firMac(), firMac2()} {
		// Gate each candidate on the static analyzer before pricing it:
		// an uninitialized read or bad TIE operand would make the energy
		// comparison meaningless.
		proc, prog, err := w.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := xlint.Analyze(prog, proc).Err(); err != nil {
			log.Fatal(err)
		}
		est, err := cr.Model.EstimateWorkload(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		edp := est.EnergyUJ() * float64(est.Cycles) / 1000
		fmt.Printf("%-10s %10d %12.3f %16.3f\n", w.Name, est.Cycles, est.EnergyUJ(), edp)
	}
	fmt.Println("\n(the macro-model lets the designer rank candidates in milliseconds;")
	fmt.Println(" the paper's flow would need hours of RTL power estimation per candidate)")
}
