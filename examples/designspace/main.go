// Design-space exploration in the style of the paper's Fig. 4: one
// application (the Reed-Solomon encoder) with four candidate custom-
// instruction choices, evaluated by both the fast macro-model and the
// slow RTL-level reference. The claim under test is *relative accuracy*:
// the two profiles must track each other, so that energy-optimization
// decisions made with the macro-model alone are the same decisions the
// reference would give.
//
//	go run ./examples/designspace
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"xtenergy/internal/core"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
)

func bar(uj, scale float64) string {
	n := int(uj / scale)
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", n)
}

func main() {
	cfg := procgen.Default()
	tech := rtlpower.DefaultTechnology()
	tech.Detail = 0.1

	fmt.Println("characterizing the processor family once...")
	cr, err := core.Characterize(context.Background(), cfg, tech, workloads.CharacterizationSuite(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReed-Solomon encoder with four custom-instruction choices:")
	fmt.Printf("%-10s %9s %14s %16s %9s\n", "choice", "cycles", "estimate (uJ)", "reference (uJ)", "err")

	type row struct {
		name     string
		est, ref float64
	}
	var rows []row
	var tEst, tRef time.Duration
	for _, w := range workloads.ReedSolomonConfigurations() {
		t0 := time.Now()
		est, err := cr.Model.EstimateWorkload(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		tEst += time.Since(t0)

		t0 = time.Now()
		ref, err := core.ReferenceEnergy(context.Background(), cfg, tech, w)
		if err != nil {
			log.Fatal(err)
		}
		tRef += time.Since(t0)

		errPct := 100 * (est.EnergyPJ - ref.EnergyPJ) / ref.EnergyPJ
		fmt.Printf("%-10s %9d %14.2f %16.2f %+8.1f%%\n",
			w.Name, est.Cycles, est.EnergyUJ(), ref.EnergyUJ(), errPct)
		rows = append(rows, row{w.Name, est.EnergyUJ(), ref.EnergyUJ()})
	}

	fmt.Println("\nenergy profile (macro-model M vs reference R):")
	for _, r := range rows {
		fmt.Printf("%-10s M %s\n", r.name, bar(r.est, 0.5))
		fmt.Printf("%-10s R %s\n", "", bar(r.ref, 0.5))
	}

	best := rows[0]
	for _, r := range rows[1:] {
		if r.est < best.est {
			best = r
		}
	}
	fmt.Printf("\nmacro-model picks %q as the lowest-energy choice", best.name)
	refBest := rows[0]
	for _, r := range rows[1:] {
		if r.ref < refBest.ref {
			refBest = r
		}
	}
	fmt.Printf("; the reference agrees: %v\n", refBest.name == best.name)
	fmt.Printf("exploration time: macro-model %v vs reference %v\n", tEst, tRef)
}
