// Configurable-option study: the zero-overhead loop option.
//
// The paper's target is a *configurable* and extensible processor: the
// designer tunes base-core options (Section II) as well as custom
// instructions. This example evaluates one such option — Xtensa-style
// zero-overhead loops — on a dot-product kernel: the same computation is
// compiled as a conventional branch loop and as a hardware loop, and the
// macro-model prices both against the RTL-level reference.
//
//	go run ./examples/loopoption
package main

import (
	"context"
	"fmt"
	"log"

	"xtenergy/internal/core"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
	"xtenergy/internal/xlint"
)

const n = 256

func data() string {
	// Reuse the deterministic generator style of the workload suite.
	out := "xa:\n"
	for i := 0; i < n; i += 8 {
		out += ".word "
		for j := 0; j < 8; j++ {
			if j > 0 {
				out += ", "
			}
			out += fmt.Sprint((i+j)*73%997 - 400)
		}
		out += "\n"
	}
	out += "xb:\n"
	for i := 0; i < n; i += 8 {
		out += ".word "
		for j := 0; j < 8; j++ {
			if j > 0 {
				out += ", "
			}
			out += fmt.Sprint((i+j)*131%991 - 450)
		}
		out += "\n"
	}
	return out
}

func branchLoop() core.Workload {
	return core.Workload{Name: "dot-branch", Source: fmt.Sprintf(`start:
    movi a2, xa
    movi a3, xb
    movi a4, %d
    movi a5, 0
k_loop:
    l32i a6, a2, 0
    l32i a7, a3, 0
    mul a8, a6, a7
    add a5, a5, a8
    addi a2, a2, 4
    addi a3, a3, 4
    addi a4, a4, -1
    bnez a4, k_loop
    movi a9, 0x5000
    s32i a5, a9, 0
    ret
.data 0x1000
%s`, n, data())}
}

func hwLoop() core.Workload {
	return core.Workload{Name: "dot-hwloop", Source: fmt.Sprintf(`start:
    movi a2, xa
    movi a3, xb
    movi a4, %d
    movi a5, 0
    loop a4, k_done
    l32i a6, a2, 0
    l32i a7, a3, 0
    mul a8, a6, a7
    add a5, a5, a8
    addi a2, a2, 4
    addi a3, a3, 4
k_done:
    movi a9, 0x5000
    s32i a5, a9, 0
    ret
.data 0x1000
%s`, n, data())}
}

func main() {
	tech := rtlpower.DefaultTechnology()
	tech.Detail = 0.1

	// Two base-core configurations: with and without the loop option.
	plain := procgen.Default()
	looped := procgen.Default()
	looped.Name = "T1040-like+loops"
	looped.HasLoops = true

	// One characterization covers both: the option adds no new energy
	// class, it removes per-iteration branch work.
	fmt.Println("characterizing...")
	cr, err := core.Characterize(context.Background(), looped, tech, workloads.CharacterizationSuite(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		cfg procgen.Config
		w   core.Workload
	}
	fmt.Printf("\n%-12s %8s %12s %14s %8s\n", "kernel", "cycles", "est (uJ)", "ref (uJ)", "err")
	var results []core.Estimate
	for _, v := range []variant{{plain, branchLoop()}, {looped, hwLoop()}} {
		// Static sanity gate: the hardware-loop variant in particular must
		// pass the loop-option and zero-overhead-loop CFG checks before
		// the energy numbers mean anything.
		proc, prog, err := v.w.Build(v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := xlint.Analyze(prog, proc).Err(); err != nil {
			log.Fatal(err)
		}
		est, err := cr.Model.EstimateWorkload(v.cfg, v.w)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := core.ReferenceEnergy(context.Background(), v.cfg, tech, v.w)
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * (est.EnergyPJ - ref.EnergyPJ) / ref.EnergyPJ
		fmt.Printf("%-12s %8d %12.3f %14.3f %+7.1f%%\n",
			v.w.Name, est.Cycles, est.EnergyUJ(), ref.EnergyUJ(), errPct)
		results = append(results, est)
	}

	cyc := 100 * (1 - float64(results[1].Cycles)/float64(results[0].Cycles))
	nrg := 100 * (1 - results[1].EnergyPJ/results[0].EnergyPJ)
	fmt.Printf("\nzero-overhead loop option: %.0f%% fewer cycles, %.0f%% less energy on this kernel\n", cyc, nrg)
}
