// Quickstart: characterize the extensible processor once, then estimate
// the energy of a small application — with a custom instruction — from
// instruction-set simulation alone, and check the estimate against the
// slow RTL-level reference.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"xtenergy/internal/core"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/tie"
	"xtenergy/internal/workloads"
)

func main() {
	// 1. The processor family: a T1040-like base core (187 MHz, 4-way
	//    16 KB caches, 64x32 register file) in the default technology.
	cfg := procgen.Default()
	tech := rtlpower.DefaultTechnology()
	tech.Detail = 0.1 // reduced reference resolution keeps this demo quick

	// 2. Characterize once: fit the 21-coefficient energy macro-model
	//    against the RTL-level reference over the test-program suite.
	fmt.Println("characterizing (one-time per processor family)...")
	cr, err := core.Characterize(context.Background(), cfg, tech, workloads.CharacterizationSuite(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit: R^2 = %.4f over %d test programs\n\n", cr.Model.Fit.R2, len(cr.Observations))

	// 3. Define an application with a custom instruction. The TIE-like
	//    extension declares the instruction's latency, register-file
	//    usage, hardware datapath, and semantics.
	ext := &tie.Extension{
		Name: "dotp",
		Instructions: []*tie.Instruction{{
			Name:         "sqdiff", // (rs-rt)^2 in one cycle
			Latency:      1,
			ReadsGeneral: true, WritesGeneral: true,
			Datapath: []tie.DatapathElem{
				{Component: hwlib.Component{Name: "sd_sub", Cat: hwlib.AddSubCmp, Width: 32}, OnBus: true},
				{Component: hwlib.Component{Name: "sd_mul", Cat: hwlib.Multiplier, Width: 16}},
			},
			Semantics: func(_ *tie.State, op tie.Operands) uint32 {
				d := int32(op.RsVal) - int32(op.RtVal)
				return uint32(d * d)
			},
		}},
	}

	app := core.Workload{
		Name: "sum-squared-diff",
		Ext:  ext,
		Source: `
start:
    movi a2, veca
    movi a3, vecb
    movi a4, 64         ; n
    movi a5, 0          ; acc
loop:
    l32i a6, a2, 0
    l32i a7, a3, 0
    sqdiff a8, a6, a7   ; custom instruction
    add a5, a5, a8
    addi a2, a2, 4
    addi a3, a3, 4
    addi a4, a4, -1
    bnez a4, loop
    ret
.data 0x1000
veca:
.word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
.word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
.word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
.word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
vecb:
.word 2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5
.word 2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5
.word 2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5
.word 2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5
`,
	}

	// 4. Fast path: macro-model estimate (no synthesis, no RTL).
	est, err := cr.Model.EstimateWorkload(cfg, app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("macro-model estimate: %.3f uJ over %d cycles\n", est.EnergyUJ(), est.Cycles)

	// 5. Validate against the slow reference.
	ref, err := core.ReferenceEnergy(context.Background(), cfg, tech, app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RTL-level reference:  %.3f uJ\n", ref.EnergyUJ())
	fmt.Printf("error: %+.1f%%\n", 100*(est.EnergyPJ-ref.EnergyPJ)/ref.EnergyPJ)
}
