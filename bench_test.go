// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section V), plus micro-benchmarks of the main pipeline
// stages. Run with:
//
//	go test -bench=. -benchmem
//
// The Benchmark{Table1,Fig3,Table2,Fig4}* benchmarks regenerate the
// corresponding result; BenchmarkSpeedup* reproduce the macro-model vs
// RTL-reference cost comparison (the paper reports three orders of
// magnitude against gate-level simulation; see EXPERIMENTS.md).
package xtenergy_test

import (
	"context"
	"sync"
	"testing"

	"xtenergy/internal/asm"
	"xtenergy/internal/core"
	"xtenergy/internal/experiments"
	"xtenergy/internal/explore"
	"xtenergy/internal/iss"
	"xtenergy/internal/linalg"
	"xtenergy/internal/plan"
	"xtenergy/internal/procgen"
	"xtenergy/internal/profiler"
	"xtenergy/internal/regress"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/tie"
	"xtenergy/internal/workloads"
)

// Characterization is shared across benchmarks: it is itself benchmarked
// once (BenchmarkTable1Characterize) and reused as a fixture elsewhere.
var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
)

func sharedSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchSuite = experiments.Fast()
		if _, err := benchSuite.Characterization(); err != nil {
			panic(err)
		}
	})
	return benchSuite
}

// BenchmarkTable1Characterize measures the full characterization flow
// (Table I): 40 test programs x (ISS + resource analysis + reference
// power estimation) + the regression fit.
func BenchmarkTable1Characterize(b *testing.B) {
	cfg := procgen.Default()
	tech := rtlpower.FastTechnology()
	suite := workloads.CharacterizationSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Characterize(context.Background(), cfg, tech, suite, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3FittingErrors measures regenerating the fitting-error
// profile from a built model (the regression + residual side of Fig. 3).
func BenchmarkFig3FittingErrors(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := s.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		if f.MaxAbsPct > 10 {
			b.Fatalf("fit degraded: %v", f.MaxAbsPct)
		}
	}
}

// BenchmarkTable2Applications measures the fast estimation path over the
// ten Table II applications (what a designer iterating on custom
// instructions actually pays per candidate).
func BenchmarkTable2Applications(b *testing.B) {
	s := sharedSuite(b)
	cr, err := s.Characterization()
	if err != nil {
		b.Fatal(err)
	}
	apps := workloads.Applications()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range apps {
			if _, err := cr.Model.EstimateWorkload(s.Config, w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig4ReedSolomon measures estimating the four Reed-Solomon
// custom-instruction choices with the macro-model (the Fig. 4 sweep).
func BenchmarkFig4ReedSolomon(b *testing.B) {
	s := sharedSuite(b)
	cr, err := s.Characterization()
	if err != nil {
		b.Fatal(err)
	}
	cfgs := workloads.ReedSolomonConfigurations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range cfgs {
			if _, err := cr.Model.EstimateWorkload(s.Config, w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSpeedupMacroModel and BenchmarkSpeedupRTLReference together
// reproduce the speedup comparison on one application (DES): divide the
// two ns/op figures to get the speedup factor. The reference runs at
// full netlist resolution (Detail 1.0), as the honest cost of the slow
// path.
func BenchmarkSpeedupMacroModel(b *testing.B) {
	s := sharedSuite(b)
	cr, err := s.Characterization()
	if err != nil {
		b.Fatal(err)
	}
	w, _ := workloads.ApplicationByName("des")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cr.Model.EstimateWorkload(s.Config, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeedupRTLReference(b *testing.B) {
	s := sharedSuite(b)
	tech := s.Tech
	tech.Detail = 1.0
	w, _ := workloads.ApplicationByName("des")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReferenceEnergy(context.Background(), s.Config, tech, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInstructionOnly measures refitting and rescoring the
// instruction-level-only model variant (the hybrid-vs-instruction-only
// ablation of DESIGN.md).
func BenchmarkAblationInstructionOnly(b *testing.B) {
	s := sharedSuite(b)
	if _, err := s.Table2(); err != nil { // populates the app cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ablations(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the pipeline stages ---

// BenchmarkISS measures raw instruction-set simulation throughput
// (report as instructions/ns via b.N scaling).
func BenchmarkISS(b *testing.B) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		b.Fatal(err)
	}
	w, _ := workloads.ApplicationByName("bubsort")
	prog, err := asm.New(proc.TIE).Assemble(w.Name, w.Source)
	if err != nil {
		// bubsort uses custom mnemonics; fall back to a base program.
		w2 := workloads.ReedSolomonBase()
		prog, err = asm.New(proc.TIE).Assemble(w2.Name, w2.Source)
		if err != nil {
			b.Fatal(err)
		}
	}
	sim := iss.New(proc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(prog, iss.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Retired), "instrs/op")
	}
}

// BenchmarkISSSteps measures the pure simulation hot loop — no trace,
// no estimator — over the Reed-Solomon base workload. This is the loop
// the predecoded plan (internal/plan) feeds: per-instruction metadata
// comes from the program's prebuilt records and dispatch is an indexed
// table walk. allocs/op must stay independent of how many instructions
// retire (steady state allocates nothing per step); ns/op divided by
// instrs/op is the per-instruction cost tracked in BENCH_iss.json.
func BenchmarkISSSteps(b *testing.B) {
	w := workloads.ReedSolomonBase()
	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		b.Fatal(err)
	}
	sim := iss.New(proc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(prog, iss.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Retired), "instrs/op")
	}
}

// BenchmarkPlanBuild measures predecoding one program into its plan
// (plan.Build) — the one-time cost the hot loop's per-step savings are
// bought with. It is paid once per (program, extension) pair and
// amortizes across every consumer and every re-run.
func BenchmarkPlanBuild(b *testing.B) {
	w := workloads.ReedSolomonBase()
	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := plan.Build(prog.Code, prog.CodeBase, prog.Uncached, proc.TIE)
		if len(p.Recs) != len(prog.Code) {
			b.Fatal("short plan")
		}
	}
}

// BenchmarkISSWithTrace measures the trace-collecting ISS mode used by
// the reference path.
func BenchmarkISSWithTrace(b *testing.B) {
	w := workloads.ReedSolomonBase()
	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		b.Fatal(err)
	}
	sim := iss.New(proc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(prog, iss.Options{CollectTrace: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTLPowerEstimate measures the structural reference estimator
// alone (per recorded trace) at the default reduced resolution.
func BenchmarkRTLPowerEstimate(b *testing.B) {
	w := workloads.ReedSolomonBase()
	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		b.Fatal(err)
	}
	res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: true})
	if err != nil {
		b.Fatal(err)
	}
	est, err := rtlpower.New(proc, rtlpower.FastTechnology())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateTrace(res.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceStreamed measures the streaming reference path —
// the ISS feeding the incremental StreamEstimator through the bounded
// batch channel (rtlpower.RunStreamed), with no materialized trace.
// Compare against BenchmarkISSWithTrace + BenchmarkRTLPowerEstimate,
// the two halves of the old materialize-then-walk pipeline; allocs/op
// here is independent of how many instructions the workload retires.
func BenchmarkReferenceStreamed(b *testing.B) {
	w := workloads.ReedSolomonBase()
	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		b.Fatal(err)
	}
	est, err := rtlpower.New(proc, rtlpower.FastTechnology())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := est.Stream()
		if _, err := rtlpower.RunStreamed(context.Background(), iss.New(proc), prog, iss.Options{}, st); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssembler measures two-pass assembly of a mid-sized program.
func BenchmarkAssembler(b *testing.B) {
	w := workloads.ReedSolomonBase()
	comp, err := tie.Compile(nil)
	if err != nil {
		b.Fatal(err)
	}
	a := asm.New(comp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Assemble(w.Name, w.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegressionFit measures solving the 40x21 least-squares system
// (the fit itself, excluding simulation).
func BenchmarkRegressionFit(b *testing.B) {
	s := sharedSuite(b)
	cr, err := s.Characterization()
	if err != nil {
		b.Fatal(err)
	}
	n := len(cr.Observations)
	x := linalg.NewMatrix(n, core.NumVars)
	y := make([]float64, n)
	for i, o := range cr.Observations {
		for j := 0; j < core.NumVars; j++ {
			// Tiny jitter keeps unused columns from being all zero.
			x.Set(i, j, o.Vars[j]+float64((i+j)%3))
		}
		y[i] = o.MeasuredPJ
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regress.FitLinear(x, y, regress.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidationApplications measures the fast path over the five
// extended validation applications.
func BenchmarkValidationApplications(b *testing.B) {
	s := sharedSuite(b)
	cr, err := s.Characterization()
	if err != nil {
		b.Fatal(err)
	}
	apps := workloads.ValidationApplications()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range apps {
			if _, err := cr.Model.EstimateWorkload(s.Config, w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExploreDesignSpace measures pricing the 4-choice Reed-Solomon
// design space with the macro-model, Pareto marking included.
func BenchmarkExploreDesignSpace(b *testing.B) {
	s := sharedSuite(b)
	cr, err := s.Characterization()
	if err != nil {
		b.Fatal(err)
	}
	var cands []explore.Candidate
	for _, w := range workloads.ReedSolomonConfigurations() {
		cands = append(cands, explore.Candidate{Config: s.Config, Workload: w})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := explore.Evaluate(cr.Model, cands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfiler measures per-instruction energy attribution over a
// recorded trace.
func BenchmarkProfiler(b *testing.B) {
	s := sharedSuite(b)
	cr, err := s.Characterization()
	if err != nil {
		b.Fatal(err)
	}
	w, _ := workloads.ByName("rs_base")
	proc, prog, err := w.Build(s.Config)
	if err != nil {
		b.Fatal(err)
	}
	res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profiler.Profile(cr.Model, proc, prog, res.Trace); err != nil {
			b.Fatal(err)
		}
	}
}
