module xtenergy

go 1.22
